"""Traffic-trace scenarios: trace model, generators and the replay driver.

The serving benchmarks historically measured one workload shape — uniform
query batches — which mispredicts both latency and rebalance behaviour on
the skewed, bursty traffic real deployments see (cf. the Tunable-LSH
observation that workloads drift).  This module closes that gap with three
pieces:

* a **trace model**: a :class:`Trace` is an ordered list of timestamped
  :class:`TraceEvent` records (query events carrying the service's own wire
  grammar, update events carrying edge insertions), serialised one JSON
  object per line so traces are diffable, recordable and replayable.  The
  JSONL form round-trips bitwise: ``parse_trace_line(event.to_json())``
  reproduces the event exactly, and malformed lines fail loudly with their
  line number (mirroring :func:`repro.service.batching.parse_edge`);
* **synthetic generators** (:data:`TRACE_GENERATORS`): uniform traffic,
  Zipf-skewed hot nodes, bursty arrivals, adversarial update storms aimed at
  hot shards, and multi-tenant interleaving — each fully determined by its
  seed;
* a **replay driver**: :func:`replay_trace` runs a trace against an
  in-process :class:`~repro.service.service.QueryService` /
  :class:`~repro.service.sharded.ShardedQueryService`;
  :func:`replay_trace_http` replays the same trace through the HTTP tier's
  coalescer.  Both emit one normalized :class:`ScenarioResult` per run —
  QPS, p50/p99 latency, cache hit rate, rebalances triggered and an answer
  checksum built from the lossless wire encoding
  (:func:`repro.service.http.encode_answer`), so in-process and HTTP
  replays of the same trace are checksum-comparable.

Approximate serving (``ServiceParams.accuracy_budget``) plugs in here:
pass ``reference`` (an exact similarity matrix) to the replay driver and
the per-scenario record reports the *realized* error next to the declared
budget.  See ``docs/scenarios.md`` for the runbook.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import math
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import (
    CloudWalkerError,
    ConfigurationError,
    WireFormatError,
)
from repro.service.batching import (
    PairQuery,
    Query,
    SourceQuery,
    TopKQuery,
    parse_query,
)
from repro.service.http import encode_answer

#: Event kind of a query record (wire-format query line).
QUERY_EVENT = "query"
#: Event kind of an update record (edge insertions).
UPDATE_EVENT = "update"

_EVENT_KINDS = (QUERY_EVENT, UPDATE_EVENT)
_EVENT_FIELDS = {"at", "kind", "tenant", "query", "edges"}
_HEADER_FIELDS = {"kind", "name", "meta"}


def _check_edges(edges: Any) -> Tuple[Tuple[int, int], ...]:
    """Validate and normalise an edge list, mirroring ``parse_edge`` style."""
    if isinstance(edges, (str, bytes)) or not isinstance(edges, Iterable):
        raise WireFormatError(
            f"edges must be a list of [src, dst] pairs, got {edges!r}"
        )
    normalised = []
    for entry in edges:
        if isinstance(entry, (str, bytes)) or not isinstance(entry, Sequence) \
                or len(entry) != 2:
            raise WireFormatError(
                f"malformed edge {entry!r}; expected a [src, dst] pair"
            )
        src, dst = entry
        for node in (src, dst):
            if isinstance(node, bool) or not isinstance(node, int):
                raise WireFormatError(
                    f"malformed edge {entry!r}; node ids must be integers"
                )
            if node < 0:
                raise WireFormatError(
                    f"malformed edge {entry!r}; node ids must be non-negative"
                )
        normalised.append((int(src), int(dst)))
    if not normalised:
        raise WireFormatError("update event carries no edges")
    return tuple(normalised)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a traffic trace.

    ``kind`` is :data:`QUERY_EVENT` (then ``query`` holds one wire-format
    query line, the same grammar :func:`repro.service.batching.parse_query`
    accepts) or :data:`UPDATE_EVENT` (then ``edges`` holds the inserted
    ``(src, dst)`` pairs).  ``at`` is the arrival offset in seconds from
    trace start; ``tenant`` labels the originating client stream in
    multi-tenant traces.  Construction validates eagerly and raises
    :class:`repro.errors.WireFormatError` on malformed content, so a bad
    event can never be serialised in the first place.
    """

    at: float
    kind: str
    query: Optional[str] = None
    edges: Tuple[Tuple[int, int], ...] = ()
    tenant: str = "default"

    def __post_init__(self) -> None:
        if isinstance(self.at, bool) or not isinstance(self.at, (int, float)):
            raise WireFormatError(
                f"event timestamp must be a number, got {self.at!r}"
            )
        if not math.isfinite(self.at) or self.at < 0:
            raise WireFormatError(
                f"event timestamp must be finite and >= 0, got {self.at!r}"
            )
        object.__setattr__(self, "at", float(self.at))
        if self.kind not in _EVENT_KINDS:
            raise WireFormatError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{_EVENT_KINDS}"
            )
        if not isinstance(self.tenant, str) or not self.tenant \
                or "\n" in self.tenant:
            raise WireFormatError(
                f"tenant must be a non-empty single-line string, "
                f"got {self.tenant!r}"
            )
        if self.kind == QUERY_EVENT:
            if self.edges:
                raise WireFormatError(
                    f"query event must not carry edges, got {self.edges!r}"
                )
            if not isinstance(self.query, str) or not self.query:
                raise WireFormatError(
                    f"query event needs a wire-format query line, "
                    f"got {self.query!r}"
                )
            parse_query(self.query)  # raises WireFormatError when malformed
        else:
            if self.query is not None:
                raise WireFormatError(
                    f"update event must not carry a query, got {self.query!r}"
                )
            object.__setattr__(self, "edges", _check_edges(self.edges))

    def to_json(self) -> str:
        """Serialise to one JSONL line with a fixed key order.

        The key order and JSON float rendering (``repr``, which round-trips
        IEEE doubles exactly) are both deterministic, so
        ``parse_trace_line(event.to_json()).to_json()`` reproduces the line
        byte for byte.
        """
        record: Dict[str, Any] = {"at": self.at, "kind": self.kind,
                                  "tenant": self.tenant}
        if self.kind == QUERY_EVENT:
            record["query"] = self.query
        else:
            record["edges"] = [[src, dst] for src, dst in self.edges]
        return json.dumps(record)


def parse_trace_line(text: str, line_number: Optional[int] = None) -> TraceEvent:
    """Parse one JSONL trace line into a :class:`TraceEvent`.

    Malformed lines raise :class:`repro.errors.WireFormatError` naming the
    line number (when given) and the offending content — the same
    fail-loudly contract as :func:`repro.service.batching.parse_edge`.
    """
    tag = f"trace line {line_number}" if line_number is not None else "trace line"
    try:
        record = json.loads(text)
    except ValueError as exc:
        raise WireFormatError(
            f"{tag}: not valid JSON ({exc}) in {text!r}"
        ) from exc
    if not isinstance(record, dict):
        raise WireFormatError(
            f"{tag}: expected a JSON object, got {text!r}"
        )
    unknown = set(record) - _EVENT_FIELDS
    if unknown:
        raise WireFormatError(
            f"{tag}: unexpected fields {sorted(unknown)} in {text!r}"
        )
    try:
        return TraceEvent(
            at=record.get("at"),
            kind=record.get("kind"),
            query=record.get("query"),
            edges=record.get("edges") or (),
            tenant=record.get("tenant", "default"),
        )
    except WireFormatError as exc:
        raise WireFormatError(f"{tag}: {exc}") from exc


@dataclass(frozen=True)
class Trace:
    """An ordered traffic trace: header metadata plus timestamped events.

    Events must be sorted by non-decreasing ``at``; ``meta`` carries the
    generator's provenance (scenario name, seed, shape knobs) and must be
    JSON-serialisable.
    """

    name: str
    events: Tuple[TraceEvent, ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise WireFormatError(
                f"trace name must be a non-empty string, got {self.name!r}"
            )
        object.__setattr__(self, "events", tuple(self.events))
        previous = 0.0
        for position, event in enumerate(self.events):
            if event.at < previous:
                raise WireFormatError(
                    f"trace {self.name!r}: event {position} timestamp "
                    f"{event.at} decreases below {previous}"
                )
            previous = event.at

    @property
    def n_queries(self) -> int:
        """Number of query events."""
        return sum(1 for event in self.events if event.kind == QUERY_EVENT)

    @property
    def n_updates(self) -> int:
        """Number of update events."""
        return sum(1 for event in self.events if event.kind == UPDATE_EVENT)

    @property
    def duration(self) -> float:
        """Arrival offset of the last event (0.0 for an empty trace)."""
        return self.events[-1].at if self.events else 0.0

    def header_json(self) -> str:
        """Serialise the header record (name + meta) to one JSONL line."""
        return json.dumps({"kind": "trace", "name": self.name,
                           "meta": self.meta})


def trace_from_lines(lines: Iterable[str], source: str = "<memory>") -> Trace:
    """Parse JSONL lines (optionally led by a header record) into a trace.

    Blank lines are skipped; any malformed line raises
    :class:`repro.errors.WireFormatError` with its 1-based line number.
    ``source`` names the origin (file path) in error messages.
    """
    name = "trace"
    meta: Dict[str, Any] = {}
    events: List[TraceEvent] = []
    saw_header = False
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if not saw_header and not events:
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise WireFormatError(
                    f"{source}: trace line {line_number}: not valid JSON "
                    f"({exc}) in {line!r}"
                ) from exc
            if isinstance(record, dict) and record.get("kind") == "trace":
                unknown = set(record) - _HEADER_FIELDS
                if unknown:
                    raise WireFormatError(
                        f"{source}: trace line {line_number}: unexpected "
                        f"header fields {sorted(unknown)} in {line!r}"
                    )
                header_name = record.get("name")
                if not isinstance(header_name, str) or not header_name:
                    raise WireFormatError(
                        f"{source}: trace line {line_number}: header name "
                        f"must be a non-empty string, got {header_name!r}"
                    )
                header_meta = record.get("meta", {})
                if not isinstance(header_meta, dict):
                    raise WireFormatError(
                        f"{source}: trace line {line_number}: header meta "
                        f"must be an object, got {header_meta!r}"
                    )
                name, meta, saw_header = header_name, header_meta, True
                continue
        try:
            events.append(parse_trace_line(line, line_number))
        except WireFormatError as exc:
            raise WireFormatError(f"{source}: {exc}") from exc
    try:
        return Trace(name=name, events=tuple(events), meta=meta)
    except WireFormatError as exc:
        raise WireFormatError(f"{source}: {exc}") from exc


def read_trace(path: Any) -> Trace:
    """Read a JSONL trace file written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_lines(handle.read().splitlines(), source=str(path))


def write_trace(trace: Trace, path: Any) -> None:
    """Write a trace as JSONL: one header record, then one line per event."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.header_json() + "\n")
        for event in trace.events:
            handle.write(event.to_json() + "\n")


# --------------------------------------------------------------------------- #
# Synthetic generators
# --------------------------------------------------------------------------- #
def _normalised_mix(mix: Sequence[float]) -> np.ndarray:
    weights = np.asarray(mix, dtype=np.float64)
    if weights.shape != (3,) or (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError(
            f"mix must be three non-negative weights (pair, source, topk), "
            f"got {mix!r}"
        )
    return weights / weights.sum()


def _query_line(rng: np.random.Generator, source: int, n_nodes: int,
                mix: np.ndarray, top_k: int) -> str:
    """One wire-format query line for ``source``, drawn from the mix."""
    kind = int(rng.choice(3, p=mix))
    if kind == 0:
        target = int(rng.integers(0, n_nodes))
        return f"pair {source} {target}"
    if kind == 1:
        return f"source {source}"
    return f"topk {source} {top_k}"


def _zipf_weights(n_nodes: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n_nodes + 1, dtype=np.float64)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def uniform_trace(n_nodes: int, n_events: int = 200, qps: float = 200.0,
                  mix: Sequence[float] = (0.6, 0.1, 0.3), top_k: int = 10,
                  seed: int = 0, name: str = "uniform") -> Trace:
    """Uniform traffic: Poisson arrivals, sources drawn uniformly.

    The baseline every other scenario is compared against — no skew, no
    bursts, a fixed pair/source/top-k ``mix``.
    """
    weights = _normalised_mix(mix)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n_events))
    events = [
        TraceEvent(
            at=float(arrivals[position]), kind=QUERY_EVENT,
            query=_query_line(rng, int(rng.integers(0, n_nodes)), n_nodes,
                              weights, top_k),
        )
        for position in range(n_events)
    ]
    return Trace(name=name, events=tuple(events),
                 meta={"scenario": name, "n_nodes": n_nodes,
                       "n_events": n_events, "qps": qps, "seed": seed})


def zipf_trace(n_nodes: int, n_events: int = 200, skew: float = 1.1,
               qps: float = 200.0, mix: Sequence[float] = (0.5, 0.1, 0.4),
               top_k: int = 10, seed: int = 0, name: str = "zipf") -> Trace:
    """Zipf-skewed hot nodes: a few sources dominate the traffic.

    Node popularity follows a Zipf law with exponent ``skew`` over a seeded
    random permutation of the node ids, so the hot set is scattered across
    id space (and hence across contiguous shard ranges) — the shape that
    exercises caching and load accounting.
    """
    weights = _normalised_mix(mix)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n_nodes)
    popularity = _zipf_weights(n_nodes, skew)
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n_events))
    sources = rng.choice(permutation, size=n_events, p=popularity)
    events = [
        TraceEvent(
            at=float(arrivals[position]), kind=QUERY_EVENT,
            query=_query_line(rng, int(sources[position]), n_nodes, weights,
                              top_k),
        )
        for position in range(n_events)
    ]
    return Trace(name=name, events=tuple(events),
                 meta={"scenario": name, "n_nodes": n_nodes,
                       "n_events": n_events, "skew": skew, "qps": qps,
                       "seed": seed})


def bursty_trace(n_nodes: int, n_events: int = 200, burst_size: int = 16,
                 burst_gap: float = 0.2, intra_gap: float = 0.0005,
                 mix: Sequence[float] = (0.6, 0.1, 0.3), top_k: int = 10,
                 seed: int = 0, name: str = "bursty") -> Trace:
    """Bursty arrivals: quiet gaps punctuated by near-simultaneous bursts.

    Every burst packs ``burst_size`` queries ``intra_gap`` seconds apart;
    bursts start ``burst_gap`` seconds apart.  The worst case for admission
    control and the best case for batch coalescing.
    """
    weights = _normalised_mix(mix)
    rng = np.random.default_rng(seed)
    events = []
    for position in range(n_events):
        burst, offset = divmod(position, burst_size)
        events.append(TraceEvent(
            at=burst * burst_gap + offset * intra_gap, kind=QUERY_EVENT,
            query=_query_line(rng, int(rng.integers(0, n_nodes)), n_nodes,
                              weights, top_k),
        ))
    return Trace(name=name, events=tuple(events),
                 meta={"scenario": name, "n_nodes": n_nodes,
                       "n_events": n_events, "burst_size": burst_size,
                       "burst_gap": burst_gap, "seed": seed})


def update_storm_trace(n_nodes: int, n_events: int = 200,
                       storm_every: int = 25, storm_edges: int = 6,
                       skew: float = 1.1, qps: float = 200.0,
                       top_k: int = 10, seed: int = 0,
                       name: str = "update_storm") -> Trace:
    """Adversarial update storms aimed at the hottest query sources.

    A Zipf-skewed query stream (``n_events`` queries) interleaved with
    bursts of ``storm_edges`` edge insertions every ``storm_every``
    queries.  Each inserted edge points *at* one of the hottest nodes, so
    every storm invalidates exactly the cache entries the query stream
    depends on — the worst case for incremental re-indexing and cache
    effectiveness.
    """
    rng = np.random.default_rng(seed)
    weights = _normalised_mix((0.5, 0.1, 0.4))
    permutation = rng.permutation(n_nodes)
    popularity = _zipf_weights(n_nodes, skew)
    hot = permutation[: max(4, n_nodes // 20)]
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n_events))
    sources = rng.choice(permutation, size=n_events, p=popularity)
    events = []
    for position in range(n_events):
        at = float(arrivals[position])
        events.append(TraceEvent(
            at=at, kind=QUERY_EVENT,
            query=_query_line(rng, int(sources[position]), n_nodes, weights,
                              top_k),
        ))
        if (position + 1) % storm_every == 0:
            edges = tuple(
                (int(rng.integers(0, n_nodes)), int(rng.choice(hot)))
                for _ in range(storm_edges)
            )
            events.append(TraceEvent(at=at, kind=UPDATE_EVENT, edges=edges))
    return Trace(name=name, events=tuple(events),
                 meta={"scenario": name, "n_nodes": n_nodes,
                       "n_events": n_events, "storm_every": storm_every,
                       "storm_edges": storm_edges, "skew": skew,
                       "seed": seed})


def multi_tenant_trace(n_nodes: int, n_events: int = 240, tenants: int = 3,
                       qps: float = 300.0, top_k: int = 10, seed: int = 0,
                       name: str = "multi_tenant") -> Trace:
    """Multi-tenant interleaving: independent client streams, merged by time.

    Each tenant runs its own Poisson arrival process with its own traffic
    profile — tenant 0 uniform pair-heavy, tenant 1 Zipf top-k-heavy,
    tenant 2 source-vector scans, further tenants cycling through those
    profiles — and the streams are merged into one timeline.  Exercises the
    cross-client dedup of the batch planner and the coalescer.
    """
    if tenants < 1:
        raise ConfigurationError(f"tenants must be >= 1, got {tenants}")
    rng = np.random.default_rng(seed)
    per_tenant = [n_events // tenants + (1 if t < n_events % tenants else 0)
                  for t in range(tenants)]
    profiles = (
        ("uniform", _normalised_mix((0.8, 0.0, 0.2))),
        ("zipf", _normalised_mix((0.2, 0.0, 0.8))),
        ("scan", _normalised_mix((0.3, 0.5, 0.2))),
    )
    events: List[TraceEvent] = []
    for tenant in range(tenants):
        profile_name, weights = profiles[tenant % len(profiles)]
        count = per_tenant[tenant]
        arrivals = np.cumsum(
            rng.exponential(tenants / qps, size=count)
        )
        if profile_name == "zipf":
            permutation = rng.permutation(n_nodes)
            popularity = _zipf_weights(n_nodes, 1.2)
            sources = rng.choice(permutation, size=count, p=popularity)
        else:
            sources = rng.integers(0, n_nodes, size=count)
        for position in range(count):
            events.append(TraceEvent(
                at=float(arrivals[position]), kind=QUERY_EVENT,
                query=_query_line(rng, int(sources[position]), n_nodes,
                                  weights, top_k),
                tenant=f"tenant-{tenant}",
            ))
    events.sort(key=lambda event: event.at)
    return Trace(name=name, events=tuple(events),
                 meta={"scenario": name, "n_nodes": n_nodes,
                       "n_events": n_events, "tenants": tenants,
                       "qps": qps, "seed": seed})


#: Scenario name -> generator, the registry the CLI and benchmarks draw from.
TRACE_GENERATORS: Dict[str, Callable[..., Trace]] = {
    "uniform": uniform_trace,
    "zipf": zipf_trace,
    "bursty": bursty_trace,
    "update_storm": update_storm_trace,
    "multi_tenant": multi_tenant_trace,
}


def generate_trace(scenario: str, n_nodes: int, **kwargs: Any) -> Trace:
    """Generate a named synthetic trace from :data:`TRACE_GENERATORS`."""
    try:
        generator = TRACE_GENERATORS[scenario]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose one of "
            f"{sorted(TRACE_GENERATORS)}"
        ) from None
    return generator(n_nodes, **kwargs)


# --------------------------------------------------------------------------- #
# Replay driver
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReplayOptions:
    """Knobs of the replay drivers.

    ``batch_size`` caps how many consecutive query events are answered as
    one service batch; ``batch_window`` (seconds of trace time, ``None``
    disables) additionally flushes a batch when the next event arrives too
    long after the batch opened.  ``pace=True`` replays in (approximate)
    real time by sleeping until each batch's first arrival offset; the
    default replays as fast as possible.  ``rebalance_every`` asks the
    service for :meth:`~repro.service.sharded.ShardedQueryService.
    maybe_rebalance` after every N batches (``0`` disables; in-process
    replay only) and records each decision.  ``update_wait``,
    ``max_attempts`` and ``max_retry_seconds`` apply to the HTTP driver
    only: whether ``POST /update`` blocks until applied, how many times a
    429/503 backpressure response is retried (with linear backoff), and
    the cumulative-sleep budget one event's retries may consume — the
    replay fails loudly, naming the exhausted event's trace line, when
    either bound is hit.
    """

    batch_size: int = 32
    batch_window: Optional[float] = None
    pace: bool = False
    rebalance_every: int = 0
    update_wait: bool = True
    max_attempts: int = 50
    max_retry_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_window is not None and self.batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.rebalance_every < 0:
            raise ConfigurationError(
                f"rebalance_every must be >= 0, got {self.rebalance_every}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_retry_seconds <= 0:
            raise ConfigurationError(
                f"max_retry_seconds must be > 0, got {self.max_retry_seconds}"
            )


@dataclass(frozen=True)
class ScenarioResult:
    """Normalized outcome of one scenario replay.

    ``answer_checksum`` is a SHA-256 over every answer's lossless wire
    encoding in trace order — two replays (in-process or HTTP) answered
    identically if and only if their checksums match.  ``realized_*`` error
    fields are populated only when the replay was given a ``reference``
    similarity matrix; ``accuracy_budget`` echoes the service's declared
    budget (``None`` in exact mode).
    """

    scenario: str
    transport: str
    mode: str
    n_events: int
    n_queries: int
    n_updates: int
    n_batches: int
    duration_seconds: float
    qps: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    cache_hit_rate: float
    rebalances_applied: int
    rebalance_decisions: Tuple[bool, ...]
    answer_checksum: str
    index_versions: Tuple[int, int]
    versions_monotonic: bool
    accuracy_budget: Optional[float]
    realized_mean_error: Optional[float]
    realized_max_error: Optional[float]
    retried_submissions: int = 0

    def to_record(self) -> Dict[str, Any]:
        """One JSON-serialisable record for the per-scenario JSONL log."""
        return {
            "scenario": self.scenario,
            "transport": self.transport,
            "mode": self.mode,
            "n_events": self.n_events,
            "n_queries": self.n_queries,
            "n_updates": self.n_updates,
            "n_batches": self.n_batches,
            "duration_seconds": self.duration_seconds,
            "qps": self.qps,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "rebalances_applied": self.rebalances_applied,
            "rebalance_decisions": list(self.rebalance_decisions),
            "answer_checksum": self.answer_checksum,
            "index_versions": list(self.index_versions),
            "versions_monotonic": self.versions_monotonic,
            "accuracy_budget": self.accuracy_budget,
            "realized_mean_error": self.realized_mean_error,
            "realized_max_error": self.realized_max_error,
            "retried_submissions": self.retried_submissions,
        }


def write_records(results: Iterable[ScenarioResult], path: Any) -> None:
    """Append one JSONL record per scenario result to ``path``."""
    with open(path, "a", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_record()) + "\n")


def _iter_batches(
    trace: Trace, options: ReplayOptions
) -> Iterator[Tuple[str, Any, int]]:
    """Group a trace into dispatch units, preserving event order.

    Yields ``("query", [events], start_index)`` for runs of consecutive
    query events (split by ``batch_size`` / ``batch_window``) and
    ``("update", event, index)`` for each update event.  The index is the
    unit's first event's position in ``trace.events``, so error paths can
    name the JSONL trace line (``index + 2``: one header line, then
    one 1-based line per event).
    """
    batch: List[TraceEvent] = []
    batch_start = 0
    for index, event in enumerate(trace.events):
        if event.kind == UPDATE_EVENT:
            if batch:
                yield QUERY_EVENT, batch, batch_start
                batch = []
            yield UPDATE_EVENT, event, index
            continue
        if batch and (
            len(batch) >= options.batch_size
            or (options.batch_window is not None
                and event.at - batch[0].at > options.batch_window)
        ):
            yield QUERY_EVENT, batch, batch_start
            batch = []
        if not batch:
            batch_start = index
        batch.append(event)
    if batch:
        yield QUERY_EVENT, batch, batch_start


def _accumulate_errors(query: Query, answer: Any, reference: np.ndarray,
                       errors: List[float]) -> None:
    """Per-query absolute error vs a reference similarity matrix.

    Accepts both in-process answers (floats / ndarrays / ranked tuples)
    and their decoded JSON wire shapes.
    """
    if isinstance(query, PairQuery):
        errors.append(abs(float(answer)
                          - float(reference[query.source, query.target])))
    elif isinstance(query, SourceQuery):
        scores = np.asarray(answer, dtype=np.float64)
        errors.append(float(np.abs(scores - reference[query.source]).mean()))
    else:
        entries = [(int(node), float(score)) for node, score in answer]
        if entries:
            deltas = [abs(score - float(reference[query.source, node]))
                      for node, score in entries]
            errors.append(float(np.mean(deltas)))


def _finalize(scenario: str, transport: str, trace: Trace, checksum, latencies,
              n_batches: int, duration: float, versions: List[int],
              stats_before: Dict[str, Any], stats_after: Dict[str, Any],
              decisions: List[bool], errors: List[float],
              budget: Optional[float], mode: str,
              retried: int = 0) -> ScenarioResult:
    """Assemble the normalized per-scenario record from raw replay state."""
    hits = stats_after.get("cache_hits", 0) - stats_before.get("cache_hits", 0)
    misses = (stats_after.get("cache_misses", 0)
              - stats_before.get("cache_misses", 0))
    lookups = hits + misses
    latency = np.asarray(latencies, dtype=np.float64)
    monotonic = all(earlier <= later
                    for earlier, later in zip(versions, versions[1:]))
    return ScenarioResult(
        scenario=scenario,
        transport=transport,
        mode=mode,
        n_events=len(trace.events),
        n_queries=trace.n_queries,
        n_updates=trace.n_updates,
        n_batches=n_batches,
        duration_seconds=duration,
        qps=trace.n_queries / duration if duration > 0 else float("inf"),
        p50_latency_seconds=(float(np.percentile(latency, 50))
                             if latency.size else 0.0),
        p99_latency_seconds=(float(np.percentile(latency, 99))
                             if latency.size else 0.0),
        cache_hit_rate=hits / lookups if lookups else 0.0,
        rebalances_applied=(stats_after.get("rebalances_applied", 0)
                            - stats_before.get("rebalances_applied", 0)),
        rebalance_decisions=tuple(decisions),
        answer_checksum=checksum.hexdigest(),
        index_versions=(versions[0], versions[-1]) if versions else (0, 0),
        versions_monotonic=monotonic,
        accuracy_budget=budget,
        realized_mean_error=float(np.mean(errors)) if errors else None,
        realized_max_error=float(np.max(errors)) if errors else None,
        retried_submissions=retried,
    )


def _digest_answer(checksum, encoded: Any) -> None:
    """Fold one answer's wire encoding into the running checksum."""
    checksum.update(
        json.dumps(encoded, separators=(",", ":")).encode("ascii")
    )
    checksum.update(b"\n")


def replay_trace(service, trace: Trace,
                 options: Optional[ReplayOptions] = None,
                 reference: Optional[np.ndarray] = None) -> ScenarioResult:
    """Replay a trace against an in-process query service.

    Query events are grouped into batches (see :class:`ReplayOptions`) and
    answered via ``service.run_batch``; update events are applied in order
    via ``service.add_edges``.  Per-query latency is the wall-clock of the
    batch that answered it.  ``reference`` (an exact similarity matrix,
    e.g. :func:`repro.analysis.accuracy.exact_linearized_matrix`) enables
    realized-error reporting — meaningful only for traces without update
    events, since updates change the ground truth mid-replay.  The replay
    is deterministic for a fixed service seed and backend: two replays of
    the same trace on freshly built services produce identical checksums
    and identical rebalance decisions.
    """
    options = options or ReplayOptions()
    default_k = service.service_params.default_top_k
    checksum = hashlib.sha256()
    latencies: List[float] = []
    errors: List[float] = []
    decisions: List[bool] = []
    versions: List[int] = []
    stats_before = service.stats()
    mode = "approximate" if stats_before.get("approx_mode") else "exact"
    n_batches = 0
    start = time.perf_counter()
    for kind, unit, _index in _iter_batches(trace, options):
        if kind == UPDATE_EVENT:
            if options.pace:
                _sleep_until(start, unit.at)
            service.add_edges(list(unit.edges))
            versions.append(service.stats()["index_version"])
            continue
        queries = [parse_query(event.query, default_k=default_k)
                   for event in unit]
        if options.pace:
            _sleep_until(start, unit[0].at)
        batch_start = time.perf_counter()
        answers = service.run_batch(queries)
        batch_seconds = time.perf_counter() - batch_start
        n_batches += 1
        latencies.extend([batch_seconds] * len(queries))
        versions.append(answers.index_version)
        for query, answer in zip(queries, answers):
            encoded = encode_answer(query, answer)
            _digest_answer(checksum, encoded)
            if reference is not None:
                _accumulate_errors(query, encoded, reference, errors)
        if options.rebalance_every and n_batches % options.rebalance_every == 0 \
                and hasattr(service, "maybe_rebalance"):
            report = service.maybe_rebalance()
            decisions.append(bool(report["applied"]))
    duration = time.perf_counter() - start
    return _finalize(trace.name, "in-process", trace, checksum, latencies,
                     n_batches, duration, versions, stats_before,
                     service.stats(), decisions, errors,
                     service.service_params.accuracy_budget, mode)


def _sleep_until(start: float, at: float) -> None:
    """Sleep until ``at`` seconds after ``start`` (perf_counter timeline)."""
    remaining = at - (time.perf_counter() - start)
    if remaining > 0:
        time.sleep(remaining)


def _http_request(connection: http.client.HTTPConnection, method: str,
                  path: str, payload: Optional[Dict[str, Any]] = None):
    """One HTTP round trip; returns ``(status, decoded JSON body)``."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    decoded = json.loads(raw.decode("utf-8")) if raw else {}
    return response.status, decoded


def _http_submit(connection, method: str, path: str,
                 payload: Dict[str, Any], accepted: Tuple[int, ...],
                 options: ReplayOptions,
                 context: str = "") -> Tuple[Dict[str, Any], int]:
    """Submit with bounded retries on 429/503 backpressure responses.

    Returns ``(body, retries)``; raises :class:`repro.errors.
    CloudWalkerError` on any other non-2xx status, after
    ``options.max_attempts`` consecutive backpressure refusals, or once
    the linear backoff would sleep past ``options.max_retry_seconds``
    cumulatively — the backoff grows with the attempt number, so an
    attempt bound alone lets a persistent 503 stall a replay for minutes.
    ``context`` names the trace event being submitted and is embedded in
    every failure message.
    """
    retries = 0
    slept = 0.0
    for attempt in range(options.max_attempts):
        status, body = _http_request(connection, method, path, payload)
        if status in accepted:
            return body, retries
        if status in (429, 503):
            retries += 1
            pause = 0.005 * (attempt + 1)
            if slept + pause > options.max_retry_seconds:
                raise CloudWalkerError(
                    f"{method} {path}{context} still refused after {retries} "
                    f"retries of 429/503 backpressure spanning {slept:.3f}s; "
                    f"the next backoff would exceed max_retry_seconds="
                    f"{options.max_retry_seconds}"
                )
            slept += pause
            time.sleep(pause)
            continue
        raise CloudWalkerError(
            f"{method} {path}{context} failed with HTTP {status}: {body!r}"
        )
    raise CloudWalkerError(
        f"{method} {path}{context} still refused ({options.max_attempts} "
        f"attempts of 429/503 backpressure); raise max_attempts or shrink "
        f"the trace"
    )


def replay_trace_http(trace: Trace, host: str, port: int,
                      options: Optional[ReplayOptions] = None,
                      reference: Optional[np.ndarray] = None,
                      default_top_k: int = 10) -> ScenarioResult:
    """Replay a trace through the HTTP tier's batch coalescer.

    Speaks the :mod:`repro.service.http` JSON protocol from a single
    connection: query batches via ``POST /query``, update events via
    ``POST /update`` (``wait`` per :class:`ReplayOptions`), service stats
    via ``GET /stats`` before and after.  Documented backpressure responses
    (429 on updates, 503 on queries) are retried with backoff and counted
    in ``retried_submissions``; any other error status fails the replay
    loudly.  Answer checksums use the same lossless wire encoding as the
    in-process driver, so an HTTP replay of a trace is checksum-comparable
    with an in-process replay of the same trace against an identically
    built service.
    """
    options = options or ReplayOptions()
    checksum = hashlib.sha256()
    latencies: List[float] = []
    errors: List[float] = []
    versions: List[int] = []
    retried = 0
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        _, stats_before = _http_request(connection, "GET", "/stats")
        mode = "approximate" if stats_before.get("approx_mode") else "exact"
        budget = stats_before.get("accuracy_budget")
        n_batches = 0
        start = time.perf_counter()
        for kind, unit, index in _iter_batches(trace, options):
            if kind == UPDATE_EVENT:
                if options.pace:
                    _sleep_until(start, unit.at)
                payload = {"edges": [[src, dst] for src, dst in unit.edges],
                           "wait": options.update_wait}
                context = (f" (trace line {index + 2}: update event, "
                           f"{len(unit.edges)} edges)")
                body, tries = _http_submit(connection, "POST", "/update",
                                           payload, (200, 202), options,
                                           context=context)
                retried += tries
                if "index_version" in body:
                    versions.append(body["index_version"])
                continue
            if options.pace:
                _sleep_until(start, unit[0].at)
            queries = [parse_query(event.query, default_k=default_top_k)
                       for event in unit]
            payload = {"queries": [event.query for event in unit]}
            context = (f" (trace lines {index + 2}-{index + 1 + len(unit)}: "
                       f"query batch of {len(unit)})")
            batch_start = time.perf_counter()
            body, tries = _http_submit(connection, "POST", "/query", payload,
                                       (200,), options, context=context)
            batch_seconds = time.perf_counter() - batch_start
            retried += tries
            n_batches += 1
            latencies.extend([batch_seconds] * len(queries))
            versions.append(body["index_version"])
            for query, encoded in zip(queries, body["answers"]):
                _digest_answer(checksum, encoded)
                if reference is not None:
                    _accumulate_errors(query, encoded, reference, errors)
        duration = time.perf_counter() - start
        _, stats_after = _http_request(connection, "GET", "/stats")
    finally:
        connection.close()
    return _finalize(trace.name, "http", trace, checksum, latencies,
                     n_batches, duration, versions, stats_before, stats_after,
                     [], errors, budget, mode, retried)
