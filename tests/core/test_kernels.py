"""Kernel tier: bitwise identity with the Python oracles, flag semantics.

The optional jitted twins in :mod:`repro.core.kernels` may only ever change
*speed*: their contract is bitwise identity with
:func:`repro.core.montecarlo.combine_pair_distributions`,
:func:`repro.core.montecarlo.self_meeting_column` and the interval
reachability ball.  These tests pin that contract on the kernel *source*
(which runs unjitted when numba is absent — the supported degraded path),
plus the mode flag's request/active semantics and its dispatch through the
real entry points.
"""

import numpy as np
import pytest

from repro.config import ServiceParams, SimRankParams
from repro.core import kernels, montecarlo, reachability
from repro.errors import ConfigurationError
from repro.graph import generators


@pytest.fixture()
def graph():
    return generators.erdos_renyi_graph(150, 800, seed=13)


@pytest.fixture()
def params():
    return SimRankParams(c=0.6, walk_steps=5, jacobi_iterations=2,
                         index_walkers=15, query_walkers=50, seed=13)


@pytest.fixture()
def distributions(graph, params):
    sources = list(range(0, graph.n_nodes, 4))
    return montecarlo.estimate_walk_distributions_batch(
        graph, sources, params, walkers=120)


@pytest.fixture()
def restore_mode():
    """Leave the process-global kernel flag exactly as we found it."""
    before = kernels.requested()
    yield
    kernels.request(before)


class TestPairwiseSum:
    @pytest.mark.parametrize("n", [0, 1, 5, 7, 8, 9, 64, 127, 128, 129,
                                   200, 1000, 4097])
    def test_matches_numpy_sum_bitwise(self, n):
        rng = np.random.default_rng(n)
        values = rng.standard_normal(n + 3)
        # Offset by 3: the oracle sums a slice, so the replica must too.
        expected = values[3:3 + n].sum()
        assert kernels._pairwise_sum(values, 3, n) == expected

    def test_adversarial_magnitudes(self):
        rng = np.random.default_rng(99)
        values = rng.standard_normal(513) * np.logspace(-12, 12, 513)
        assert kernels._pairwise_sum(values, 0, len(values)) == values.sum()


class TestCombinePairIdentity:
    def test_matches_oracle_bitwise(self, graph, params, distributions):
        weights = np.linspace(0.3, 1.7, graph.n_nodes)
        sources = sorted(distributions)
        for a, b in zip(sources[0::2], sources[1::2]):
            oracle = montecarlo.combine_pair_distributions(
                distributions[a], distributions[b], weights,
                params.c, params.walk_steps)
            twin = kernels.combine_pair(
                distributions[a], distributions[b], weights,
                params.c, params.walk_steps)
            assert twin == oracle  # float equality, not approx

    def test_dispatch_through_oracle_entry_point(self, graph, params,
                                                 distributions,
                                                 restore_mode):
        """`combine_pair_distributions` answers identically in both modes
        (on a numba-less interpreter "numba" falls back but the dispatch
        line still runs)."""
        weights = np.linspace(0.3, 1.7, graph.n_nodes)
        a, b = sorted(distributions)[:2]
        kernels.request("python")
        python_value = montecarlo.combine_pair_distributions(
            distributions[a], distributions[b], weights,
            params.c, params.walk_steps)
        kernels.request("numba")
        numba_value = montecarlo.combine_pair_distributions(
            distributions[a], distributions[b], weights,
            params.c, params.walk_steps)
        assert numba_value == python_value


class TestSelfMeetingIdentity:
    def test_matches_oracle_bitwise(self, params, distributions):
        for source in sorted(distributions):
            oracle = montecarlo.self_meeting_column(
                distributions[source], params.c)
            twin = kernels.self_meeting(distributions[source], params.c)
            assert twin.keys() == oracle.keys()
            for node in oracle:
                assert twin[node] == oracle[node]

    def test_dispatch_through_oracle_entry_point(self, params, distributions,
                                                 restore_mode):
        source = sorted(distributions)[0]
        kernels.request("python")
        python_column = montecarlo.self_meeting_column(
            distributions[source], params.c)
        kernels.request("numba")
        numba_column = montecarlo.self_meeting_column(
            distributions[source], params.c)
        assert numba_column == python_column


class TestIntervalBallIdentity:
    @pytest.mark.parametrize("steps", [0, 1, 2, 4, 8])
    def test_matches_interval_and_bfs_oracles(self, graph, steps):
        labels = reachability.shared_labels(graph)
        for seed_node in range(0, graph.n_nodes, 11):
            twin = kernels.interval_ball(labels, [seed_node], steps)
            assert twin == reachability.reachable_set(
                graph, [seed_node], steps, mode="interval")
            assert twin == reachability.reachable_set(
                graph, [seed_node], steps, mode="bfs")

    def test_multi_seed_ball(self, graph):
        labels = reachability.shared_labels(graph)
        seeds = [0, 17, 42]
        assert kernels.interval_ball(labels, seeds, 3) == \
            reachability.reachable_set(graph, seeds, 3, mode="bfs")

    def test_dispatch_through_reachable_set(self, graph, restore_mode):
        kernels.request("numba")
        assert reachability.reachable_set(graph, [5], 4, mode="interval") == \
            reachability.reachable_set(graph, [5], 4, mode="bfs")


class TestModeFlag:
    def test_request_records_intent_and_falls_back(self, restore_mode):
        outcome = kernels.request("numba")
        assert kernels.requested() == "numba"
        if kernels.NUMBA_AVAILABLE:
            assert outcome == "numba" and kernels.active() == "numba"
        else:
            assert outcome == "python" and kernels.active() == "python"

    def test_python_mode_is_always_active(self, restore_mode):
        assert kernels.request("python") == "python"
        assert kernels.active() == "python"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            kernels.request("cython")

    def test_service_params_validates_kernels(self):
        assert ServiceParams(kernels="numba").kernels == "numba"
        with pytest.raises(ConfigurationError):
            ServiceParams(kernels="fortran")

    def test_service_requests_mode_at_construction(self, restore_mode):
        from repro.service import QueryService

        graph = generators.copying_model_graph(40, out_degree=3, seed=5)
        params = SimRankParams(c=0.6, walk_steps=3, jacobi_iterations=2,
                               index_walkers=10, query_walkers=20, seed=5)
        service = QueryService.build(
            graph, params,
            service_params=ServiceParams(cache_capacity=0, kernels="numba"))
        stats = service.stats()
        assert stats["kernels_requested"] == "numba"
        assert stats["kernels_active"] == (
            "numba" if kernels.NUMBA_AVAILABLE else "python")


@pytest.mark.skipif(not kernels.NUMBA_AVAILABLE,
                    reason="numba not importable: jitted tier cannot run")
class TestJittedTier:
    def test_jitted_twins_still_bitwise_identical(self, graph, params,
                                                  distributions,
                                                  restore_mode):
        """When numba IS present the compiled code paths (not just the
        Python source) must hold the identity contract."""
        kernels.request("python")  # oracle side must not dispatch
        weights = np.linspace(0.3, 1.7, graph.n_nodes)
        sources = sorted(distributions)
        for a, b in zip(sources[0::2], sources[1::2]):
            oracle = montecarlo.combine_pair_distributions(
                distributions[a], distributions[b], weights,
                params.c, params.walk_steps)
            assert kernels.combine_pair(
                distributions[a], distributions[b], weights,
                params.c, params.walk_steps) == oracle
        source = sources[0]
        assert kernels.self_meeting(distributions[source], params.c) == \
            montecarlo.self_meeting_column(distributions[source], params.c)
        labels = reachability.shared_labels(graph)
        assert kernels.interval_ball(labels, [3], 4) == \
            reachability.reachable_set(graph, [3], 4, mode="bfs")
