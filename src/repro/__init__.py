"""CloudWalker: parallel SimRank computation at scale.

This package reproduces the system described in *"Walking in the Cloud:
Parallel SimRank at Scale"* (PASCO / CloudWalker, SoCC 2015 / PVLDB 2016).

The public API is intentionally small; the most common entry points are:

``repro.graph``
    Directed-graph substrate: CSR graphs, generators, dataset stand-ins.
``repro.engine``
    A Spark-like local cluster-computing engine (RDDs, broadcast variables,
    DAG scheduler) used by the distributed execution models.
``repro.core``
    The CloudWalker algorithm itself: offline diagonal indexing
    (Monte-Carlo + Jacobi) and online MCSP / MCSS / MCAP queries.
``repro.baselines``
    The comparison systems from the paper: naive SimRank, FMT and LIN,
    plus co-citation similarity.
``repro.service``
    The online serving layer: batched query execution over a persistently
    loaded index with an LRU cache of walk distributions, live edge
    insertions folded in incrementally, versioned index snapshots, and a
    sharded scatter-gather deployment (``ShardedQueryService``).

Quick start::

    from repro import CloudWalker, SimRankParams
    from repro.graph import generators

    graph = generators.power_law_graph(n=500, avg_degree=8, seed=7)
    cw = CloudWalker(graph, params=SimRankParams.paper_defaults())
    cw.build_index()
    print(cw.single_pair(3, 17))
    print(cw.single_source(3)[:10])
"""

from repro.config import (
    ClusterSpec,
    ServiceParams,
    ShardingParams,
    SimRankParams,
    UpdateParams,
)
from repro.errors import (
    CloudWalkerError,
    ConfigurationError,
    GraphFormatError,
    IndexNotBuiltError,
    NodeNotFoundError,
)
from repro.graph.digraph import DiGraph

__version__ = "1.0.0"

__all__ = [
    "CloudWalker",
    "ClusterSpec",
    "CloudWalkerError",
    "ConfigurationError",
    "DiGraph",
    "GraphFormatError",
    "IndexNotBuiltError",
    "NodeNotFoundError",
    "QueryService",
    "ServiceParams",
    "ShardedQueryService",
    "ShardingParams",
    "SimRankParams",
    "UpdateParams",
    "__version__",
]


def __getattr__(name: str):
    # CloudWalker and QueryService are imported lazily so that light-weight
    # uses of the graph or engine subpackages do not pull in the whole
    # algorithm stack.
    if name == "CloudWalker":
        from repro.core.cloudwalker import CloudWalker

        return CloudWalker
    if name == "QueryService":
        from repro.service.service import QueryService

        return QueryService
    if name == "ShardedQueryService":
        from repro.service.sharded import ShardedQueryService

        return ShardedQueryService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
