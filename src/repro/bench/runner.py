"""Timing helpers used by the benchmark experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple


def time_call(func: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``func`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


@dataclass
class QueryTimings:
    """Latency samples for one query type on one dataset."""

    query_type: str
    seconds: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.seconds.append(value)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds) if self.seconds else float("nan")

    @property
    def minimum(self) -> float:
        return min(self.seconds) if self.seconds else float("nan")

    @property
    def maximum(self) -> float:
        return max(self.seconds) if self.seconds else float("nan")

    def to_dict(self) -> Dict[str, float]:
        return {
            "query_type": self.query_type,
            "mean_seconds": self.mean,
            "min_seconds": self.minimum,
            "max_seconds": self.maximum,
            "samples": len(self.seconds),
        }


def measure_queries(func: Callable[..., Any], arguments: List[tuple],
                    query_type: str) -> QueryTimings:
    """Call ``func(*args)`` for every argument tuple, recording latencies."""
    timings = QueryTimings(query_type=query_type)
    for args in arguments:
        _result, elapsed = time_call(lambda args=args: func(*args))
        timings.add(elapsed)
    return timings
