"""Tests for the Broadcasting and RDD execution models.

Both models must produce the same index (up to Monte-Carlo noise) as the
local estimator and answer queries consistently with it; the RDD model must
exercise the engine's shuffle machinery.
"""

import numpy as np
import pytest

from repro.config import ClusterSpec, ExecutionOptions, SimRankParams
from repro.core.broadcast_impl import BroadcastingModel
from repro.core.diagonal import build_diagonal_index
from repro.core.rdd_impl import RDDModel, _spread_counts
from repro.engine import ClusterContext
from repro.errors import IndexNotBuiltError
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(90, out_degree=4, copy_prob=0.5, seed=21)


@pytest.fixture(scope="module")
def params():
    return SimRankParams(c=0.6, walk_steps=5, jacobi_iterations=4,
                         index_walkers=120, query_walkers=400, seed=17)


@pytest.fixture(scope="module")
def local_index(graph, params):
    return build_diagonal_index(graph, params)


class TestBroadcastingModel:
    def test_build_index_matches_local(self, graph, params, local_index):
        model = BroadcastingModel(graph, params=params, num_partitions=4)
        index = model.build_index()
        assert index.build_info.execution_model == "broadcasting"
        assert index.n_nodes == graph.n_nodes
        # Same algorithm, different random streams -> close but not equal.
        assert np.abs(index.diagonal - local_index.diagonal).mean() < 0.05
        model.shutdown()

    def test_engine_jobs_recorded(self, graph, params):
        model = BroadcastingModel(graph, params=params, num_partitions=3)
        index = model.build_index()
        assert index.build_info.extras["engine_tasks"] > 0
        assert index.build_info.extras["graph_broadcast_bytes"] == graph.memory_bytes()
        assert len(model.context.job_history) > 0
        model.shutdown()

    def test_queries_after_build(self, graph, params):
        model = BroadcastingModel(graph, params=params, num_partitions=2)
        model.build_index()
        value = model.single_pair(1, 5)
        assert 0.0 <= value <= 1.0
        scores = model.single_source(3)
        assert scores.shape == (graph.n_nodes,)
        assert scores[3] == pytest.approx(1.0)
        sample = model.all_pairs(nodes=[0, 1])
        assert sample.shape == (graph.n_nodes, graph.n_nodes)
        model.shutdown()

    def test_query_before_build_raises(self, graph, params):
        model = BroadcastingModel(graph, params=params)
        with pytest.raises(IndexNotBuiltError):
            model.single_pair(0, 1)
        model.shutdown()

    def test_feasibility_check(self, graph, params):
        tiny_cluster = ClusterSpec(machines=2, cores_per_machine=2,
                                   memory_per_machine_gb=1e-6)
        model = BroadcastingModel(graph, params=params)
        assert model.feasible_on()  # default local cluster has plenty of room
        assert not model.feasible_on(tiny_cluster)
        model.shutdown()

    def test_shared_context_reused(self, graph, params):
        ctx = ClusterContext(ExecutionOptions(backend="serial"))
        model = BroadcastingModel(graph, params=params, context=ctx)
        model.build_index()
        assert model.context is ctx
        ctx.shutdown()


class TestRDDModel:
    def test_build_index_matches_local(self, graph, params, local_index):
        model = RDDModel(graph, params=params, num_partitions=3)
        index = model.build_index()
        assert index.build_info.execution_model == "rdd"
        assert np.abs(index.diagonal - local_index.diagonal).mean() < 0.05
        model.shutdown()

    def test_shuffles_recorded(self, graph, params):
        model = RDDModel(graph, params=params, num_partitions=3)
        index = model.build_index()
        # The walk steps shuffle walker records around, so shuffle traffic
        # must be visible in the metrics — this is the structural difference
        # from the broadcasting model.
        assert index.build_info.extras["shuffle_bytes"] > 0
        model.shutdown()

    def test_walk_counts_by_step_conserves_walkers_on_cycle(self, params):
        cycle = generators.cycle_graph(12)
        model = RDDModel(cycle, params=params, num_partitions=2)
        per_step = model.walk_counts_by_step([0, 5], walkers_per_source=16)
        assert len(per_step) == params.walk_steps + 1
        for step_records in per_step:
            totals = {}
            for source, _node, count in step_records:
                totals[source] = totals.get(source, 0) + count
            assert totals == {0: 16, 5: 16}
        model.shutdown()

    def test_walkers_absorbed_on_star(self, params):
        star = generators.star_graph(5)
        model = RDDModel(star, params=params, num_partitions=2)
        per_step = model.walk_counts_by_step([1], walkers_per_source=8)
        assert len(per_step) == params.walk_steps + 1
        assert sum(count for _s, _n, count in per_step[0]) == 8
        assert sum(count for _s, _n, count in per_step[2]) == 0
        model.shutdown()

    def test_queries_match_local_engine(self, graph, params, local_index):
        from repro.core.queries import QueryEngine

        model = RDDModel(graph, params=params, num_partitions=2)
        model.build_index()
        local_engine = QueryEngine(graph, local_index, params)
        pair_rdd = model.single_pair(2, 9, walkers=3000)
        pair_local = local_engine.single_pair(2, 9, walkers=3000)
        assert pair_rdd == pytest.approx(pair_local, abs=0.05)
        source_rdd = model.single_source(4, walkers=2000)
        source_local = local_engine.single_source(4, walkers=2000)
        assert source_rdd[4] == 1.0
        assert np.abs(source_rdd - source_local).mean() < 0.02
        model.shutdown()

    def test_self_pair_is_one(self, graph, params):
        model = RDDModel(graph, params=params)
        model.build_index()
        assert model.single_pair(3, 3) == 1.0
        model.shutdown()

    def test_query_before_build_raises(self, graph, params):
        model = RDDModel(graph, params=params)
        with pytest.raises(IndexNotBuiltError):
            model.single_source(0)
        model.shutdown()

    def test_all_pairs_subset(self, graph, params):
        model = RDDModel(graph, params=params)
        model.build_index(index_walkers=40)
        matrix = model.all_pairs(nodes=[0, 1], walkers=50)
        assert matrix.shape == (graph.n_nodes, graph.n_nodes)
        assert matrix[0, 0] == 1.0
        model.shutdown()

    def test_reduced_walker_budget_recorded(self, graph, params):
        model = RDDModel(graph, params=params)
        index = model.build_index(index_walkers=25)
        assert index.build_info.extras["index_walkers_used"] == 25
        model.shutdown()


class TestSpreadCounts:
    def test_conserves_total(self):
        rng = np.random.default_rng(0)
        neighbors = np.array([3, 4, 5])
        spread = _spread_counts(rng, neighbors, 100)
        assert sum(count for _node, count in spread) == 100
        assert {node for node, _count in spread} <= {3, 4, 5}

    def test_single_neighbor_fast_path(self):
        rng = np.random.default_rng(0)
        assert _spread_counts(rng, np.array([7]), 13) == [(7, 13)]

    def test_empty_neighbors(self):
        rng = np.random.default_rng(0)
        assert _spread_counts(rng, np.array([], dtype=np.int64), 5) == []
        assert _spread_counts(rng, np.array([1]), 0) == []


class TestModelEquivalence:
    def test_three_models_agree_on_similarity_ranking(self, graph, params, local_index):
        """The three execution paths must produce interchangeable indexes."""
        from repro.core.exact import linearized_simrank_matrix, ranking_overlap

        broadcast_index = BroadcastingModel(graph, params=params).build_index()
        rdd_index = RDDModel(graph, params=params).build_index()
        reference = linearized_simrank_matrix(graph, local_index.diagonal, params)
        for other in (broadcast_index, rdd_index):
            matrix = linearized_simrank_matrix(graph, other.diagonal, params)
            assert ranking_overlap(reference, matrix, k=5) > 0.9
