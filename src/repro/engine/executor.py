"""Local execution backends for engine tasks.

A *task* is a zero-argument callable producing a partition's result.  The
scheduler hands the backend a list of tasks belonging to one stage; the
backend returns their results in order.  Three backends are provided:

``SerialBackend``
    Runs tasks in the calling thread.  Deterministic, easiest to debug, and
    the default (Python-level parallel speed-ups are limited by the GIL for
    the NumPy-light portions of the workload anyway).
``ThreadBackend``
    A ``ThreadPoolExecutor``; effective when tasks spend their time inside
    NumPy/SciPy kernels that release the GIL.
``ProcessBackend``
    A ``ProcessPoolExecutor``; requires tasks (and the data they close over)
    to be picklable, so it is opt-in.

Pooled backends hold their workers **across** ``run`` calls, so a service
that scatters work per query batch pays the pool spin-up once, not per
batch.  The flip side is an explicit lifecycle: owners must call
:meth:`ExecutorBackend.close` (or use the backend as a context manager)
when done — the query services, the CLI and the benchmarks all do.  A
closed backend is safe to reuse: the next ``run`` transparently recreates
the pool.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
Task = Callable[[], T]


class ExecutorBackend:
    """Interface: run a batch of tasks and return their results in order."""

    name = "abstract"

    def run(self, tasks: Sequence[Task]) -> List[T]:
        """Execute ``tasks`` and return their results, input-ordered."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def close(self) -> None:
        """Alias of :meth:`shutdown`, matching the context-manager exit.

        Owners of pooled backends (services, CLI loops, benchmarks) call
        this when they stop scattering work; a closed backend recreates its
        pool on the next :meth:`run`, so closing is never destructive.
        """
        self.shutdown()

    def __enter__(self) -> "ExecutorBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release pooled workers."""
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutorBackend):
    """Run every task sequentially in the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> List[T]:
        """Call each task in order; no pool, no concurrency."""
        return [task() for task in tasks]


class ThreadBackend(ExecutorBackend):
    """Run tasks on a shared, persistent thread pool."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Guarded so concurrent first-runs (e.g. two query batches racing
        # on a freshly opened service) cannot each spin up a pool and leak
        # one of them.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def run(self, tasks: Sequence[Task]) -> List[T]:
        """Submit all tasks to the pool and gather results in order."""
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Join and discard the pool; the next ``run`` recreates it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessBackend(ExecutorBackend):
    """Run tasks on a persistent process pool (tasks must be picklable).

    The pool is created on first :meth:`run` and kept until
    :meth:`shutdown` — scattering per query batch through worker processes
    would otherwise pay a fork per batch.  Owners that forget to close
    leak workers until process exit, which is why every service exposes
    ``close()`` and the CLI paths run inside ``try/finally``.
    """

    name = "processes"

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def run(self, tasks: Sequence[Task]) -> List[T]:
        """Pickle-check, submit and gather; results keep the input order."""
        # Fail fast on unpicklable tasks: submitting one anyway would only
        # surface as an opaque PicklingError from a worker future.  The
        # check pickles each task a second time; that cost is accepted for
        # the early, named diagnostic.
        for position, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except Exception as exc:
                raise ConfigurationError(
                    f"task {position} of {len(tasks)} cannot be sent to the "
                    f"process backend because it is not picklable ({exc}); "
                    "use module-level functions instead of closures or "
                    "lambdas, or switch to the 'serial'/'threads' backend"
                ) from exc
        pool = self._ensure_pool()
        try:
            futures = [pool.submit(_call, task) for task in tasks]
            return [future.result() for future in futures]
        except BrokenExecutor:
            # A dead worker (OOM kill, signal) permanently breaks a
            # ProcessPoolExecutor.  Discard it so the *next* run re-forks a
            # healthy pool instead of re-raising BrokenProcessPool forever;
            # the caller still sees this batch's failure.
            self.shutdown()
            raise

    def shutdown(self) -> None:
        """Terminate the worker processes; the next ``run`` re-forks them."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def _call(task: Task) -> T:
    return task()


def make_backend(name: str, max_workers: int = 4) -> ExecutorBackend:
    """Factory used by :class:`~repro.engine.context.ClusterContext`."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers=max_workers)
    if name == "processes":
        return ProcessBackend(max_workers=max_workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected 'serial', 'threads' or 'processes'"
    )
