#!/usr/bin/env python3
"""Recommender-system example: "items cited by similar users are similar".

SimRank's recursive definition shines when two items are never consumed by
the *same* user but are consumed by *similar* users.  This example builds a
two-level citation graph (groups -> users -> items), indexes it with
CloudWalker and compares the recommendations against plain co-citation
counting, reporting precision of same-category retrieval.

Run with::

    python examples/recommendation.py
"""

import numpy as np

from repro import CloudWalker, SimRankParams
from repro.baselines.cocitation import cocitation_matrix
from repro.graph import generators


def precision_at_k(scores: np.ndarray, item: int, categories: np.ndarray, k: int) -> float:
    """Fraction of the top-k retrieved items sharing ``item``'s category."""
    n_items = len(categories)
    candidate_scores = scores[:n_items].copy()
    candidate_scores[item] = -np.inf
    top = np.argsort(-candidate_scores, kind="stable")[:k]
    return float((categories[top] == categories[item]).mean())


def main() -> None:
    graph, categories = generators.hierarchical_citation_graph(
        n_categories=6, items_per_category=25, users_per_category=40, seed=3,
    )
    n_items = len(categories)
    print(f"catalogue: {n_items} items in {categories.max() + 1} categories; {graph}")

    params = SimRankParams.paper_defaults().with_(query_walkers=2_000)
    walker = CloudWalker(graph, params=params)
    walker.build_index()

    cocitation = cocitation_matrix(graph)

    # Recommend for a handful of items that actually have citations (items
    # with no in-links have SimRank 0 to everything, by definition).
    k = 8
    rng = np.random.default_rng(1)
    cited_items = [item for item in range(n_items) if graph.in_degree(item) > 0]
    sample_items = rng.choice(cited_items, size=10, replace=False)
    simrank_precision = []
    cocitation_precision = []
    for item in sample_items:
        scores = walker.single_source(int(item))
        simrank_precision.append(precision_at_k(scores, int(item), categories, k))
        cocitation_precision.append(
            precision_at_k(cocitation[int(item)], int(item), categories, k)
        )

    print(f"\nmean precision@{k} over {len(sample_items)} query items:")
    print(f"  SimRank (CloudWalker MCSS): {np.mean(simrank_precision):.3f}")
    print(f"  Co-citation:                {np.mean(cocitation_precision):.3f}")

    item = int(sample_items[0])
    scores = walker.single_source(item)[:n_items]
    scores[item] = -np.inf
    print(f"\nexample: items recommended for item {item} (category {categories[item]}):")
    for rank, node in enumerate(np.argsort(-scores)[:5], start=1):
        print(
            f"  {rank}. item {int(node):4d}  score {scores[node]:.4f}  "
            f"(category {categories[node]})"
        )


if __name__ == "__main__":
    main()
