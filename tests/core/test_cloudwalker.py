"""Tests for the CloudWalker facade."""

import numpy as np
import pytest

from repro import CloudWalker, SimRankParams
from repro.errors import ConfigurationError, IndexNotBuiltError
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(70, out_degree=4, seed=30)


@pytest.fixture(scope="module")
def params():
    return SimRankParams.fast_defaults().with_(seed=9)


@pytest.fixture(scope="module")
def indexed_walker(graph, params):
    walker = CloudWalker(graph, params=params)
    walker.build_index()
    return walker


class TestFacadeLifecycle:
    def test_top_level_import(self):
        import repro

        assert repro.CloudWalker is CloudWalker
        assert repro.__version__

    def test_requires_index_before_query(self, graph, params):
        walker = CloudWalker(graph, params=params)
        assert not walker.is_indexed
        with pytest.raises(IndexNotBuiltError):
            walker.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            walker.save_index("/tmp/never-written.npz")

    def test_invalid_mode_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            CloudWalker(graph, mode="mapreduce")

    def test_build_and_query(self, indexed_walker, graph):
        assert indexed_walker.is_indexed
        assert "indexed" in repr(indexed_walker)
        value = indexed_walker.single_pair(0, 5)
        assert 0.0 <= value <= 1.0
        scores = indexed_walker.single_source(2)
        assert scores.shape == (graph.n_nodes,)
        ranking = indexed_walker.top_k(2, k=5)
        assert len(ranking) == 5

    def test_exact_query_flags(self, indexed_walker):
        exact_value = indexed_walker.single_pair(1, 6, exact=True)
        mc_value = indexed_walker.single_pair(1, 6, walkers=5000)
        assert mc_value == pytest.approx(exact_value, abs=0.05)
        exact_scores = indexed_walker.single_source(1, exact=True)
        assert exact_scores[1] == 1.0

    def test_all_pairs_matrix(self, graph, params):
        walker = CloudWalker(graph, params=params)
        walker.build_index()
        matrix = walker.all_pairs(walkers=100)
        assert matrix.shape == (graph.n_nodes, graph.n_nodes)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_default_params_are_paper_defaults(self, graph):
        walker = CloudWalker(graph)
        assert walker.params == SimRankParams.paper_defaults()

    def test_query_engine_accessor(self, indexed_walker):
        engine = indexed_walker.query_engine()
        assert engine.single_pair(0, 0) == 1.0

    def test_execution_model_accessor(self, graph, params):
        assert CloudWalker(graph, params=params).execution_model() is None
        broadcast_walker = CloudWalker(graph, params=params, mode="broadcasting")
        assert broadcast_walker.execution_model() is not None
        broadcast_walker.shutdown()


class TestIndexPersistence:
    def test_save_and_load_round_trip(self, indexed_walker, graph, params, tmp_path):
        path = tmp_path / "cw-index.npz"
        indexed_walker.save_index(path)
        fresh = CloudWalker(graph, params=params)
        loaded = fresh.load_index(path)
        assert np.allclose(loaded.diagonal, indexed_walker.index.diagonal)
        assert fresh.single_pair(0, 0) == 1.0

    def test_set_index_validates_graph(self, indexed_walker, params):
        other_graph = generators.cycle_graph(5)
        other = CloudWalker(other_graph, params=params)
        from repro.errors import CloudWalkerError

        with pytest.raises(CloudWalkerError):
            other.set_index(indexed_walker.index)


class TestFacadeModes:
    def test_broadcasting_mode_end_to_end(self, graph, params):
        walker = CloudWalker(graph, params=params, mode="broadcasting")
        index = walker.build_index()
        assert index.build_info.execution_model == "broadcasting"
        assert 0.0 <= walker.single_pair(0, 3) <= 1.0
        walker.shutdown()

    def test_rdd_mode_end_to_end(self, graph, params):
        walker = CloudWalker(graph, params=params, mode="rdd")
        index = walker.build_index(index_walkers=40)
        assert index.build_info.execution_model == "rdd"
        assert 0.0 <= walker.single_pair(0, 3) <= 1.0
        walker.shutdown()

    def test_exact_local_mode(self, graph, params):
        walker = CloudWalker(graph, params=params, exact=True)
        index = walker.build_index()
        assert index.build_info.execution_model == "exact-local"

    def test_local_solver_override(self, graph, params):
        walker = CloudWalker(graph, params=params)
        index = walker.build_index(solver="gauss-seidel")
        assert index.build_info.extras["solver"] == "gauss-seidel"
