"""Tests for cross-connection batch coalescing (``service/coalesce.py``).

The coalescer is pure asyncio plumbing around ``run_batch``; these tests
pin its contracts against a real (tiny) service: combined execution with
per-submission answer slicing, bitwise identity with the uncoalesced path,
admission control, isolation of a bad submission from its batch-mates,
and the drain-don't-drop shutdown.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.config import SimRankParams
from repro.errors import NodeNotFoundError, ServiceOverloadedError
from repro.graph import generators
from repro.service import BatchCoalescer, PairQuery, QueryService, TopKQuery

PARAMS = SimRankParams(c=0.6, walk_steps=3, jacobi_iterations=2,
                       index_walkers=15, query_walkers=40, seed=11)


@pytest.fixture(scope="module")
def service():
    graph = generators.copying_model_graph(70, out_degree=4, seed=9)
    built = QueryService.build(graph, PARAMS)
    yield built
    built.close()


def _run(coro):
    return asyncio.run(coro)


def _assert_equal(expected, answers):
    for left, right in zip(expected, answers):
        if isinstance(left, (float, list)):
            assert left == right
        else:
            assert np.array_equal(left, right)


def test_concurrent_submissions_coalesce_into_one_batch(service):
    submissions = [[PairQuery(2 * slot, 2 * slot + 1), TopKQuery(slot, k=3)]
                   for slot in range(5)]
    expected = [service.run_batch(queries) for queries in submissions]

    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.05)
            coalescer.start()
            try:
                results = await asyncio.gather(*[
                    coalescer.submit(queries) for queries in submissions
                ])
            finally:
                await coalescer.stop()
            return results, coalescer.stats()

    results, stats = _run(scenario())
    for queries, reference, answers in zip(submissions, expected, results):
        assert len(answers) == len(queries)
        _assert_equal(reference, answers)
        assert answers.index_version == reference.index_version
    # All five submissions landed in ONE combined run_batch.
    assert stats["batches"] == 1
    assert stats["coalesced_submissions"] == 4
    assert stats["submissions"] == 5
    assert stats["in_flight"] == 0


def test_zero_window_still_answers(service):
    queries = [PairQuery(1, 2)]
    expected = service.run_batch(queries)

    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.0)
            coalescer.start()
            try:
                return await coalescer.submit(queries)
            finally:
                await coalescer.stop()

    _assert_equal(expected, _run(scenario()))


def test_admission_control_rejects_past_max_in_flight(service):
    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.2,
                                       max_in_flight=4)
            coalescer.start()
            try:
                first = asyncio.ensure_future(
                    coalescer.submit([PairQuery(0, 1), PairQuery(2, 3),
                                      PairQuery(4, 5)])
                )
                await asyncio.sleep(0.01)  # let the first submission queue
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    await coalescer.submit([PairQuery(6, 7), PairQuery(8, 9)])
                answers = await first
                return answers, excinfo.value, coalescer.stats()
            finally:
                await coalescer.stop()

    answers, error, stats = _run(scenario())
    assert len(answers) == 3  # the admitted submission still resolved
    assert error.current == 3
    assert error.bound == 4
    assert "retry with backoff" in str(error)
    assert stats["rejected_submissions"] == 1


def test_bad_submission_is_isolated_from_batch_mates(service):
    good = [PairQuery(3, 4)]
    bad = [PairQuery(0, 10**6)]
    expected = service.run_batch(good)

    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.05)
            coalescer.start()
            try:
                results = await asyncio.gather(
                    coalescer.submit(good), coalescer.submit(bad),
                    return_exceptions=True,
                )
            finally:
                await coalescer.stop()
            return results, coalescer.stats()

    (good_answers, bad_outcome), stats = _run(scenario())
    _assert_equal(expected, good_answers)
    assert isinstance(bad_outcome, NodeNotFoundError)
    # The combined batch failed and was split per submission.
    assert stats["isolation_retries"] == 2


def test_lone_bad_submission_gets_its_error_without_retry(service):
    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.0)
            coalescer.start()
            try:
                with pytest.raises(NodeNotFoundError):
                    await coalescer.submit([PairQuery(0, 10**6)])
            finally:
                await coalescer.stop()
            return coalescer.stats()

    stats = _run(scenario())
    assert stats["isolation_retries"] == 0


def test_stop_drains_queued_submissions_instead_of_dropping(service):
    queries = [PairQuery(5, 6)]
    expected = service.run_batch(queries)

    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=5.0)
            coalescer.start()
            # Submit, then stop while the collector is still inside its
            # 5-second window: stop must execute the queued submission,
            # not abandon it.
            task = asyncio.ensure_future(coalescer.submit(queries))
            await asyncio.sleep(0.01)
            await coalescer.stop()
            answers = await task
            # After the stop, new submissions are refused.
            with pytest.raises(ServiceOverloadedError):
                await coalescer.submit(queries)
            return answers

    _assert_equal(expected, _run(scenario()))


def test_stop_is_idempotent(service):
    async def scenario():
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = BatchCoalescer(service, executor, window=0.0)
            coalescer.start()
            await coalescer.stop()
            await coalescer.stop()

    _run(scenario())
