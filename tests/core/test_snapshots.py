"""Versioned snapshot store: round trips, retention, atomicity."""

import numpy as np
import pytest
from scipy import sparse

from repro.config import SimRankParams
from repro.core.index import (
    BuildInfo,
    DiagonalIndex,
    SnapshotStore,
    load_latest,
    save_snapshot,
)
from repro.errors import CloudWalkerError


@pytest.fixture()
def index():
    params = SimRankParams.fast_defaults()
    return DiagonalIndex(
        diagonal=np.linspace(0.4, 1.0, 12), params=params,
        graph_name="toy", n_nodes=12, n_edges=30,
        build_info=BuildInfo(execution_model="incremental"),
    )


def _bump(index, version):
    """A distinguishable index payload per version."""
    return DiagonalIndex(
        diagonal=index.diagonal + version * 0.001, params=index.params,
        graph_name=index.graph_name, n_nodes=index.n_nodes,
        n_edges=index.n_edges + version, build_info=index.build_info,
    )


class TestRoundTrip:
    def test_save_load_latest(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.save_snapshot(index) == 1
        version, loaded = store.load_latest()
        assert version == 1
        assert np.array_equal(loaded.diagonal, index.diagonal)
        assert loaded.params == index.params

    def test_versions_assigned_monotonically(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        assert [store.save_snapshot(_bump(index, v)) for v in range(3)] == [1, 2, 3]
        assert store.versions() == [1, 2, 3]
        assert store.latest_version() == 3

    def test_load_specific_version(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save_snapshot(_bump(index, 1))
        store.save_snapshot(_bump(index, 2))
        assert store.load(1).n_edges == index.n_edges + 1
        assert store.load(2).n_edges == index.n_edges + 2

    def test_explicit_version_must_increase(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save_snapshot(index, version=5)
        with pytest.raises(CloudWalkerError):
            store.save_snapshot(index, version=5)
        with pytest.raises(CloudWalkerError):
            store.save_snapshot(index, version=3)
        assert store.save_snapshot(index, version=9) == 9

    def test_load_latest_empty_store_raises(self, tmp_path):
        with pytest.raises(CloudWalkerError):
            SnapshotStore(tmp_path / "nowhere").load_latest()
        assert SnapshotStore(tmp_path / "nowhere").versions() == []

    def test_describe_reads_metadata_without_full_load(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save_snapshot(index, system=sparse.identity(12, format="csr"))
        info = store.describe(1)
        assert info == {
            "version": 1, "n_nodes": 12, "n_edges": 30,
            "has_system": True, "path": str(store.index_path(1)),
        }
        with pytest.raises(CloudWalkerError):
            store.describe(99)

    def test_module_level_wrappers(self, index, tmp_path):
        assert save_snapshot(index, tmp_path) == 1
        version, loaded = load_latest(tmp_path)
        assert version == 1
        assert np.array_equal(loaded.diagonal, index.diagonal)


class TestSystemPersistence:
    def test_system_round_trips_bitwise(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        system = sparse.random(12, 12, density=0.3, random_state=3, format="csr")
        version = store.save_snapshot(index, system=system)
        loaded = store.load_system(version)
        assert loaded is not None
        assert (loaded != system.tocsr()).nnz == 0
        assert np.array_equal(loaded.data, system.tocsr().data)

    def test_missing_system_returns_none(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        version = store.save_snapshot(index)
        assert store.load_system(version) is None
        assert store.load_system() is None

    def test_load_system_defaults_to_latest(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save_snapshot(index, system=sparse.identity(12, format="csr") * 2.0)
        store.save_snapshot(_bump(index, 2),
                            system=sparse.identity(12, format="csr") * 3.0)
        assert store.load_system().data[0] == 3.0


class TestRetention:
    def test_prune_keeps_newest(self, index, tmp_path):
        store = SnapshotStore(tmp_path, retain=2)
        for version in range(4):
            store.save_snapshot(_bump(index, version),
                                system=sparse.identity(12, format="csr"))
        assert store.versions() == [3, 4]
        # System files of pruned versions are gone too.
        assert not store.system_path(1).exists()
        assert store.system_path(4).exists()

    def test_explicit_prune_returns_removed(self, index, tmp_path):
        store = SnapshotStore(tmp_path, retain=10)
        for version in range(3):
            store.save_snapshot(_bump(index, version))
        assert store.prune(retain=1) == [1, 2]
        assert store.versions() == [3]

    def test_invalid_retention_rejected(self, tmp_path):
        with pytest.raises(CloudWalkerError):
            SnapshotStore(tmp_path, retain=0)
        with pytest.raises(CloudWalkerError):
            SnapshotStore(tmp_path).prune(retain=0)


class TestAtomicity:
    def test_no_temp_files_left_behind(self, index, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save_snapshot(index, system=sparse.identity(12, format="csr"))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_foreign_files_ignored(self, index, tmp_path):
        (tmp_path / "notes.txt").write_text("not a snapshot")
        (tmp_path / "index-vBAD.npz").write_bytes(b"")
        store = SnapshotStore(tmp_path)
        store.save_snapshot(index)
        assert store.versions() == [1]
