"""ClusterContext: the engine's entry point (Spark's ``SparkContext``).

A context owns the execution backend, the DAG scheduler, the persistent RDD
cache, the broadcast registry and the job-metrics history.  CloudWalker's
execution models create one context per run and use it for every job.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import ClusterSpec, ExecutionOptions
from repro.engine.accumulator import Accumulator
from repro.engine.broadcast import Broadcast, estimate_size_bytes
from repro.engine.cost_model import ClusterCostModel, CostEstimate
from repro.engine.metrics import JobMetrics, merge_job_metrics
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import DAGScheduler
from repro.engine.executor import make_backend
from repro.graph.digraph import DiGraph
from repro.graph.partition import Partitioner


class ClusterContext:
    """Entry point for creating RDDs, broadcasts and accumulators.

    Parameters
    ----------
    options:
        Local execution options (backend, default partition count).
    cluster:
        The cluster simulated by the cost model; defaults to
        ``options.cluster``.

    Example
    -------
    >>> ctx = ClusterContext()
    >>> ctx.parallelize(range(10)).map(lambda x: x * x).sum()
    285
    """

    def __init__(
        self,
        options: Optional[ExecutionOptions] = None,
        cluster: Optional[ClusterSpec] = None,
    ) -> None:
        self.options = options or ExecutionOptions()
        self.cluster = cluster or self.options.cluster
        self._backend = make_backend(
            self.options.backend,
            max_workers=min(self.cluster.total_cores, 16),
        )
        self._scheduler = DAGScheduler(self._backend)
        self.cost_model = ClusterCostModel(self.cluster)
        self._rdd_counter = 0
        self._job_counter = 0
        self._cache: Dict[int, List[List[Any]]] = {}
        self.job_history: List[JobMetrics] = []
        self.broadcasts: List[Broadcast] = []
        self._pending_broadcast_bytes = 0

    # ------------------------------------------------------------------ #
    # Internal plumbing used by RDDs
    # ------------------------------------------------------------------ #
    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def _evict(self, rdd_id: int) -> None:
        self._cache.pop(rdd_id, None)

    def _run_job(self, rdd: RDD, action: str) -> List[List[Any]]:
        self._job_counter += 1
        partitions, metrics = self._scheduler.run(
            rdd,
            action=action,
            job_id=self._job_counter,
            persistent_cache=self._cache,
            broadcast_bytes=self._pending_broadcast_bytes,
        )
        self._pending_broadcast_bytes = 0
        self.job_history.append(metrics)
        return partitions

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def default_parallelism(self) -> int:
        """Default number of partitions for new RDDs."""
        if self.options.num_partitions is not None:
            return self.options.num_partitions
        return max(self.cluster.total_cores, 2)

    def parallelize(self, data: Iterable[Any], num_partitions: Optional[int] = None,
                    name: str = "parallelize") -> RDD:
        """Distribute an in-driver collection as an RDD."""
        return ParallelCollectionRDD(
            self, data, num_partitions or self.default_parallelism, name=name
        )

    def empty_rdd(self) -> RDD:
        """An RDD with no records and a single partition."""
        return ParallelCollectionRDD(self, [], 1, name="empty")

    def range(self, start: int, stop: Optional[int] = None,
              num_partitions: Optional[int] = None) -> RDD:
        """RDD over ``range(start, stop)`` (or ``range(start)``)."""
        if stop is None:
            start, stop = 0, start
        return self.parallelize(range(start, stop), num_partitions, name="range")

    def text_file(self, path, num_partitions: Optional[int] = None) -> RDD:
        """RDD of lines from a text file (or all ``part-*`` files in a dir)."""
        path = Path(path)
        if path.is_dir():
            files = sorted(path.glob("part-*"))
        else:
            files = [path]
        lines: List[str] = []
        for file_path in files:
            with file_path.open("r", encoding="utf-8") as handle:
                lines.extend(line.rstrip("\n") for line in handle)
        return self.parallelize(lines, num_partitions, name=f"text_file({path.name})")

    def broadcast(self, value: Any, size_bytes: Optional[int] = None) -> Broadcast:
        """Create a broadcast variable and account its size for the cost model."""
        broadcast = Broadcast(value, size_bytes=size_bytes)
        self.broadcasts.append(broadcast)
        self._pending_broadcast_bytes += broadcast.size_bytes
        return broadcast

    def accumulator(self, initial: Any = 0,
                    combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
                    name: str = "accumulator") -> Accumulator:
        """Create an accumulator."""
        return Accumulator(initial, combine, name)

    # ------------------------------------------------------------------ #
    # Graph ingestion helpers (the RDD execution model starts here)
    # ------------------------------------------------------------------ #
    def graph_in_adjacency_rdd(
        self,
        graph: DiGraph,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> RDD:
        """RDD of ``(node, in_neighbour_array)`` records for ``graph``.

        This is the graph representation of the paper's RDD execution model:
        the adjacency is *not* broadcast, it lives in the distributed
        collection itself.  ``partitioner`` controls which partition each
        node's adjacency record is placed in (default: round-robin via
        ``parallelize``).
        """
        num_partitions = num_partitions or self.default_parallelism
        records: List[Tuple[int, np.ndarray]] = [
            (node, graph.in_neighbors(node)) for node in range(graph.n_nodes)
        ]
        if partitioner is None:
            return self.parallelize(records, num_partitions, name="in_adjacency")
        groups: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(partitioner.num_partitions)]
        for node, neighbors in records:
            groups[partitioner.partition(node)].append((node, neighbors))
        rdd = ParallelCollectionRDD(self, records, partitioner.num_partitions, name="in_adjacency")
        rdd.num_partitions = partitioner.num_partitions
        rdd._partitions = groups
        return rdd

    def graph_edges_rdd(self, graph: DiGraph, num_partitions: Optional[int] = None) -> RDD:
        """RDD of ``(src, dst)`` edges for ``graph``."""
        return self.parallelize(
            list(graph.edges()), num_partitions or self.default_parallelism, name="edges"
        )

    # ------------------------------------------------------------------ #
    # Metrics and cost estimation
    # ------------------------------------------------------------------ #
    @property
    def last_job_metrics(self) -> Optional[JobMetrics]:
        """Metrics of the most recent job, if any."""
        return self.job_history[-1] if self.job_history else None

    def metrics_since(self, job_index: int, action: str = "phase") -> JobMetrics:
        """Merge all job metrics recorded at or after ``job_index``."""
        return merge_job_metrics(self.job_history[job_index:], action=action)

    def checkpoint(self) -> int:
        """Return a marker usable with :meth:`metrics_since`."""
        return len(self.job_history)

    def estimate_cost(self, metrics: Optional[JobMetrics] = None,
                      cluster: Optional[ClusterSpec] = None) -> CostEstimate:
        """Estimate cluster wall-clock for ``metrics`` (default: last job)."""
        metrics = metrics or self.last_job_metrics
        if metrics is None:
            raise ValueError("no job has been run yet; nothing to estimate")
        model = self.cost_model if cluster is None else ClusterCostModel(cluster)
        return model.estimate(metrics)

    def estimate_broadcast_size(self, value: Any) -> int:
        """Expose the broadcast size estimator (used by execution models)."""
        return estimate_size_bytes(value)

    def shutdown(self) -> None:
        """Release executor resources and cached partitions."""
        self._backend.shutdown()
        self._cache.clear()

    def __enter__(self) -> "ClusterContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ClusterContext(backend={self.options.backend!r}, "
            f"cluster={self.cluster.machines}x{self.cluster.cores_per_machine}cores)"
        )
