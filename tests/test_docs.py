"""The docs/ tree exists, is complete, and cites only paths that resolve."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"
CHECKER = REPO_ROOT / "scripts" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsTree:
    def test_required_documents_exist(self):
        assert (DOCS_DIR / "DESIGN.md").is_file()
        assert (DOCS_DIR / "architecture.md").is_file()
        assert (REPO_ROOT / "README.md").is_file()

    def test_design_md_covers_contracted_topics(self):
        # Source docstrings cite docs/DESIGN.md for these topics; keep the
        # citations honest.
        text = (DOCS_DIR / "DESIGN.md").read_text(encoding="utf-8")
        for needle in ("ablat", "incremental", "index_walkers", "walk_steps",
                       "query_walkers", "jacobi", "Per-experiment index",
                       "affected-source"):
            assert needle in text, f"docs/DESIGN.md no longer covers {needle!r}"

    def test_architecture_md_covers_contracted_topics(self):
        text = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
        for needle in ("graph", "core", "engine", "service", "cli",
                       "index_version", "CacheKey", "invalidat", "snapshot"):
            assert needle in text, f"docs/architecture.md no longer covers {needle!r}"

    def test_readme_documents_live_updates(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "Updating a live index" in text
        assert "add_edges" in text
        assert "index_version" in text


class TestDocLinks:
    def test_every_cited_path_resolves(self):
        checker = _load_checker()
        problems = checker.check_docs()
        assert problems == [], "\n".join(problems)

    def test_checker_detects_dangling_reference(self, tmp_path, monkeypatch):
        # The checker itself must actually catch rot, not just pass.
        checker = _load_checker()
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "see [gone](docs/missing.md) and `src/not/there.py`\n"
        )
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        problems = checker.check_docs()
        assert len(problems) == 2

    def test_checker_cli_exit_codes(self):
        completed = subprocess.run(
            [sys.executable, str(CHECKER)], capture_output=True, text=True,
            cwd=str(REPO_ROOT),
        )
        assert completed.returncode == 0, completed.stderr
        assert "docs OK" in completed.stdout
