"""Unit tests for the reverse random-walk engine."""

import numpy as np
import pytest

from repro.core import walks
from repro.graph import generators
from repro.graph.digraph import DiGraph


@pytest.fixture()
def rng():
    return walks.make_rng(42)


class TestStepWalkers:
    def test_walkers_move_to_in_neighbors(self, rng):
        graph = generators.cycle_graph(5)  # in-neighbour of v is v-1
        positions = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        stepped = walks.step_walkers(graph, positions, rng)
        assert stepped.tolist() == [4, 0, 1, 2, 3]

    def test_walkers_die_at_zero_in_degree(self, rng):
        graph = DiGraph(3, [(0, 1), (1, 2)])  # node 0 has no in-neighbours
        positions = np.array([0, 0, 2], dtype=np.int64)
        stepped = walks.step_walkers(graph, positions, rng)
        assert stepped[0] == walks.DEAD
        assert stepped[1] == walks.DEAD
        assert stepped[2] == 1

    def test_dead_walkers_stay_dead(self, rng):
        graph = generators.cycle_graph(4)
        positions = np.array([walks.DEAD, 2], dtype=np.int64)
        stepped = walks.step_walkers(graph, positions, rng)
        assert stepped[0] == walks.DEAD
        assert stepped[1] == 1

    def test_all_dead_short_circuit(self, rng):
        graph = generators.cycle_graph(4)
        positions = np.full(5, walks.DEAD, dtype=np.int64)
        assert (walks.step_walkers(graph, positions, rng) == walks.DEAD).all()

    def test_step_respects_uniform_choice(self):
        # Node 2 has in-neighbours {0, 1}; both should be chosen roughly
        # equally often.
        graph = DiGraph(3, [(0, 2), (1, 2)])
        rng = walks.make_rng(3)
        positions = np.full(4000, 2, dtype=np.int64)
        stepped = walks.step_walkers(graph, positions, rng)
        counts = np.bincount(stepped, minlength=3)
        assert counts[0] + counts[1] == 4000
        assert abs(counts[0] - 2000) < 200


class TestMakeRng:
    def test_deterministic_streams(self):
        a = walks.make_rng(1, stream=5).integers(0, 1000, 10)
        b = walks.make_rng(1, stream=5).integers(0, 1000, 10)
        c = walks.make_rng(1, stream=6).integers(0, 1000, 10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_none_seed_gives_generator(self):
        assert walks.make_rng(None) is not None


class TestSingleSourceWalkCounts:
    def test_step_zero_is_source(self, rng):
        graph = generators.cycle_graph(6)
        counts = walks.single_source_walk_counts(graph, 3, walkers=50, steps=4, rng=rng)
        nodes, values = counts[0]
        assert nodes.tolist() == [3]
        assert values.tolist() == [50]

    def test_counts_conserved_on_cycle(self, rng):
        graph = generators.cycle_graph(6)
        counts = walks.single_source_walk_counts(graph, 0, walkers=30, steps=5, rng=rng)
        for _nodes, values in counts:
            assert values.sum() == 30

    def test_counts_decay_with_absorption(self, rng):
        graph = generators.star_graph(4)  # leaves have in-degree 1 (hub), hub has 0
        counts = walks.single_source_walk_counts(graph, 1, walkers=20, steps=3, rng=rng)
        assert counts[0][1].sum() == 20   # at leaf
        assert counts[1][1].sum() == 20   # all at hub
        assert counts[2][1].sum() == 0    # absorbed
        assert counts[3][1].sum() == 0
        assert len(counts) == 4

    def test_invalid_source_raises(self, rng):
        graph = generators.cycle_graph(4)
        from repro.errors import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            walks.single_source_walk_counts(graph, 99, walkers=5, steps=2, rng=rng)


class TestWalkStepCounts:
    def test_counts_per_source_conserved(self):
        graph = generators.cycle_graph(8)
        sources = np.array([0, 3, 5])
        rng = walks.make_rng(1)
        for step, source_ids, node_ids, counts in walks.walk_step_counts(
            graph, sources, walkers_per_source=10, steps=4, rng=rng
        ):
            per_source = {}
            for source, count in zip(source_ids.tolist(), counts.tolist()):
                per_source[source] = per_source.get(source, 0) + count
            assert per_source == {0: 10, 3: 10, 5: 10}
            assert len(node_ids) == len(source_ids)

    def test_empty_sources(self):
        graph = generators.cycle_graph(4)
        rng = walks.make_rng(1)
        assert list(walks.walk_step_counts(graph, np.array([], dtype=np.int64), 5, 3, rng)) == []

    def test_terminates_when_all_walkers_die(self):
        graph = DiGraph(2, [(0, 1)])  # node 0 absorbs after one step
        rng = walks.make_rng(1)
        steps = list(walks.walk_step_counts(graph, np.array([1]), 10, 5, rng))
        # step 0 at node 1, step 1 at node 0, step 2 empty then stop.
        assert steps[0][0] == 0
        assert steps[-1][3].sum() == 0
        assert len(steps) <= 4


class TestSimulateWalksBatch:
    def test_bitwise_equal_to_single_source(self):
        graph = generators.copying_model_graph(100, out_degree=4, seed=5)
        sources = [3, 17, 41]
        batch = walks.simulate_walks_batch(graph, sources, walkers_per_source=40,
                                           steps=4, seed=9)
        for source in sources:
            direct = walks.single_source_walk_counts(
                graph, source, walkers=40, steps=4,
                rng=walks.make_rng(9, stream=source),
            )
            assert len(batch[source]) == len(direct) == 5
            for (batch_nodes, batch_counts), (nodes, counts) in zip(batch[source], direct):
                assert np.array_equal(batch_nodes, nodes)
                assert np.array_equal(batch_counts, counts)

    def test_bitwise_equal_with_absorption(self):
        # Sparse graph: most walkers die early, exercising the empty-tail path.
        graph = generators.erdos_renyi_graph(30, avg_degree=0.5, seed=3)
        batch = walks.simulate_walks_batch(graph, list(range(10)),
                                           walkers_per_source=15, steps=6, seed=2)
        for source in range(10):
            direct = walks.single_source_walk_counts(
                graph, source, walkers=15, steps=6,
                rng=walks.make_rng(2, stream=source),
            )
            for (batch_nodes, batch_counts), (nodes, counts) in zip(batch[source], direct):
                assert np.array_equal(batch_nodes, nodes)
                assert np.array_equal(batch_counts, counts)

    def test_duplicate_sources_collapsed(self):
        graph = generators.cycle_graph(8)
        batch = walks.simulate_walks_batch(graph, [2, 2, 5, 2], 10, 3, seed=1)
        assert sorted(batch) == [2, 5]

    def test_counts_conserved_on_cycle(self):
        graph = generators.cycle_graph(8)
        batch = walks.simulate_walks_batch(graph, [0, 4], 25, 5, seed=1)
        for source in (0, 4):
            for _nodes, counts in batch[source]:
                assert counts.sum() == 25

    def test_empty_sources(self):
        graph = generators.cycle_graph(4)
        assert walks.simulate_walks_batch(graph, [], 10, 3, seed=1) == {}

    def test_invalid_inputs_rejected(self):
        from repro.errors import NodeNotFoundError

        graph = generators.cycle_graph(4)
        with pytest.raises(NodeNotFoundError):
            walks.simulate_walks_batch(graph, [0, 99], 10, 3, seed=1)
        with pytest.raises(ValueError):
            walks.simulate_walks_batch(graph, [0], 0, 3, seed=1)


class TestExactWalkDistributions:
    def test_matches_transition_powers(self):
        graph = generators.copying_model_graph(40, out_degree=4, seed=2)
        source = 7
        distributions = walks.exact_walk_distributions(graph, source, steps=3)
        transition = graph.transition_matrix()
        expected = np.zeros(graph.n_nodes)
        expected[source] = 1.0
        for step in range(4):
            assert np.allclose(distributions[step], expected)
            expected = transition @ expected

    def test_distributions_sum_to_at_most_one(self):
        graph = generators.preferential_attachment_graph(60, out_degree=3, seed=2)
        distributions = walks.exact_walk_distributions(graph, 10, steps=5)
        for vector in distributions:
            assert vector.sum() <= 1.0 + 1e-12

    def test_monte_carlo_converges_to_exact(self):
        graph = generators.copying_model_graph(50, out_degree=4, seed=9)
        source = 5
        exact = walks.exact_walk_distributions(graph, source, steps=3)
        rng = walks.make_rng(11)
        counts = walks.single_source_walk_counts(graph, source, walkers=20000, steps=3, rng=rng)
        for step in range(4):
            estimate = np.zeros(graph.n_nodes)
            nodes, values = counts[step]
            estimate[nodes] = values / 20000
            assert np.abs(estimate - exact[step]).max() < 0.02


class TestForwardReachableSet:
    """The vectorised CSR frontier sweep must match the set-based BFS."""

    @staticmethod
    def _reference(graph, seeds, steps):
        """The historical per-node BFS, kept as the ground truth."""
        frontier = {graph.check_node(node) for node in seeds}
        reachable = set(frontier)
        for _ in range(steps):
            next_frontier = set()
            for node in frontier:
                for successor in graph.out_neighbors(node):
                    successor = int(successor)
                    if successor not in reachable:
                        reachable.add(successor)
                        next_frontier.add(successor)
            if not next_frontier:
                break
            frontier = next_frontier
        return reachable

    def test_identical_to_reference_on_random_graphs(self):
        rng = np.random.default_rng(20150731)
        for _ in range(25):
            n_nodes = int(rng.integers(2, 60))
            n_edges = int(rng.integers(0, 5 * n_nodes))
            edges = [(int(u), int(v))
                     for u, v in rng.integers(0, n_nodes, size=(n_edges, 2))]
            graph = DiGraph(n_nodes, edges)
            n_seeds = int(rng.integers(1, min(n_nodes, 5) + 1))
            seeds = [int(s) for s in rng.integers(0, n_nodes, size=n_seeds)]
            steps = int(rng.integers(0, 6))
            result = walks.forward_reachable_set(graph, seeds, steps)
            assert result == self._reference(graph, seeds, steps)
            assert all(isinstance(node, int) for node in result)

    def test_zero_steps_returns_seeds(self):
        graph = generators.cycle_graph(5)
        assert walks.forward_reachable_set(graph, [1, 3], 0) == {1, 3}

    def test_empty_seeds(self):
        graph = generators.cycle_graph(4)
        assert walks.forward_reachable_set(graph, [], 3) == set()

    def test_saturates_on_cycle(self):
        graph = generators.cycle_graph(6)
        assert walks.forward_reachable_set(graph, [0], 10) == set(range(6))

    def test_dead_end_stops_early(self):
        graph = DiGraph(4, [(0, 1), (1, 2)])  # node 2 has no out-edges
        assert walks.forward_reachable_set(graph, [0], 99) == {0, 1, 2}

    def test_invalid_seed_raises(self):
        from repro.errors import NodeNotFoundError

        graph = generators.cycle_graph(4)
        with pytest.raises(NodeNotFoundError):
            walks.forward_reachable_set(graph, [7], 2)

    def test_zero_steps_dedups_and_validates(self):
        """steps=0 returns exactly the deduped, validated seed set."""
        from repro.errors import NodeNotFoundError

        graph = generators.cycle_graph(5)
        result = walks.forward_reachable_set(graph, [3, 1, 3, 1, 1], 0)
        assert result == {1, 3}
        assert all(isinstance(node, int) for node in result)
        # Validation must run even though no traversal happens.
        with pytest.raises(NodeNotFoundError):
            walks.forward_reachable_set(graph, [0, 9], 0)

    def test_negative_steps_behaves_like_zero(self):
        graph = generators.cycle_graph(5)
        assert walks.forward_reachable_set(graph, [2, 4], -3) == {2, 4}

    def test_numpy_integer_seeds(self):
        graph = generators.cycle_graph(5)
        seeds = np.array([0, 2], dtype=np.int64)
        assert walks.forward_reachable_set(graph, seeds, 1) == {0, 1, 2, 3}

    def test_visited_mask_tracks_grown_node_count(self):
        """The mask is sized from the graph *passed in* — the post-growth
        snapshot during an ``add_edges`` lineage step — so seeds and
        frontiers may legally name nodes beyond the old count."""
        old = DiGraph(3, [(0, 1), (1, 2)])
        grown = DiGraph(6, [(0, 1), (1, 2), (2, 4), (4, 5)])
        assert old.n_nodes < grown.n_nodes
        result = walks.forward_reachable_set(grown, [2, 5], 2)
        assert result == {2, 4, 5}
        assert result == self._reference(grown, [2, 5], 2)

    def test_zero_out_degree_frontier_terminates(self):
        graph = DiGraph(4, [(0, 1)])  # nodes 1-3 have no out-edges
        assert walks.forward_reachable_set(graph, [1, 2], 5) == {1, 2}
