#!/usr/bin/env python3
"""Smoke-run every benchmark in ``benchmarks/`` at tiny sizes.

``benchmarks/*.py`` are executed rarely (they measure, so they are sized to
measure), which historically lets them rot silently when internals are
refactored: a renamed symbol or changed signature only surfaces the next
time someone runs the full benchmark suite.  This script closes that gap.
For every ``bench_*.py`` it

1. imports the module (catching import-time rot), and
2. runs the module's experiment entry point with tiny inputs — module-level
   size constants are temporarily patched down, experiment functions get
   miniature arguments — asserting a non-empty result shape.

Performance *gates* (minimum speedups etc.) are deliberately **not**
asserted here: they are meaningless at smoke sizes and belong to the real
benchmark runs (``benchmarks/run_all.py``).  Benchmarks that only expose a
pytest body (no standalone experiment function) are smoked through the same
library calls their body makes.

The registry below must cover every ``bench_*.py`` file — the test suite
(``tests/bench/test_smoke_benchmarks.py``) fails when a new benchmark is
added without a smoke entry, which is the point: a benchmark nobody can
smoke is a benchmark that will rot.

Usage::

    PYTHONPATH=src python scripts/smoke_benchmarks.py           # run all
    PYTHONPATH=src python scripts/smoke_benchmarks.py --only sharded
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
SRC_DIR = REPO_ROOT / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))


def _load(name: str):
    """Import one ``benchmarks/<name>`` module by path (no package needed)."""
    path = BENCH_DIR / name
    spec = importlib.util.spec_from_file_location(f"smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@contextlib.contextmanager
def _patched(module, **attrs):
    """Temporarily override module-level constants (sizes, budgets)."""
    saved = {key: getattr(module, key) for key in attrs}
    for key, value in attrs.items():
        setattr(module, key, value)
    try:
        yield module
    finally:
        for key, value in saved.items():
            setattr(module, key, value)


def _tiny_graph(n_nodes: int = 60):
    from repro.graph import generators

    return generators.copying_model_graph(n_nodes, out_degree=4, seed=5)


# --------------------------------------------------------------------------- #
# Per-benchmark smoke runners
# --------------------------------------------------------------------------- #
def _smoke_ablation() -> Dict[str, Any]:
    _load("bench_ablation_design_choices.py")  # import-rot check
    from repro.analysis import ablation

    graph = _tiny_graph()
    return {
        "index_walkers": ablation.index_walker_sweep(graph, [5, 10]),
        "walk_steps": ablation.walk_steps_sweep(graph, [2, 3], reference_steps=4),
        "query_walkers": ablation.query_walker_sweep(graph, [20, 40], n_pairs=2),
        "solver": ablation.solver_sweep(graph),
    }


def _smoke_fig1() -> Dict[str, Any]:
    _load("bench_fig1_convergence.py")
    from repro.bench import experiments

    return experiments.convergence_experiment(
        dataset="communities", jacobi_iterations=[0, 1], walker_counts=[5]
    )


def _smoke_fig2() -> Dict[str, Any]:
    _load("bench_fig2_scalability.py")
    from repro.bench import experiments

    return experiments.scalability_experiment(
        graph_sizes=[120], machine_counts=[1, 2]
    )


def _smoke_fig3() -> Dict[str, Any]:
    _load("bench_fig3_effectiveness.py")
    from repro.bench import experiments

    return experiments.effectiveness_experiment(
        n_categories=2, items_per_category=6, users_per_category=8, top_k=3
    )


def _smoke_http_serve() -> Dict[str, Any]:
    module = _load("bench_http_serve.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=15,
                  QUERY_WALKERS=60, NUM_SHARDS=2, N_CLIENTS=3,
                  REQUESTS_PER_CLIENT=2, HOT_SOURCES=8, PAIRS_PER_REQUEST=2,
                  COALESCE_WINDOW=0.001, POST_UPDATE_REQUESTS=3,
                  UPDATE_EDGES=((0, 100), (3, 90), (100, 7))):
        result = module.http_serve_experiment()
    # Bitwise identity is size-independent, so it IS asserted at smoke size
    # (unlike the QPS/p99 gates).
    assert result["all_identical"], "an HTTP smoke response diverged bitwise"
    return result


def _smoke_incremental_service() -> Dict[str, Any]:
    module = _load("bench_incremental_service.py")
    with _patched(module, N_COMMUNITIES=20, COMMUNITY_SIZE=10,
                  GRAPH_NODES=200, EDITED_COMMUNITIES=1, EDGES_PER_EDIT=2,
                  N_QUERIES=10):
        return module.incremental_service_experiment()


def _smoke_service_throughput() -> Dict[str, Any]:
    module = _load("bench_service_throughput.py")
    with _patched(module, GRAPH_NODES=150, HOT_SOURCES=10, N_QUERIES=24,
                  N_BATCHES=3):
        return module.service_throughput_experiment()


def _smoke_parallel_serve() -> Dict[str, Any]:
    module = _load("bench_parallel_serve.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=15,
                  QUERY_WALKERS=60, NUM_SHARDS=4, WORKER_COUNTS=(1, 2),
                  N_SOURCES=24, N_TOPK=3, UPDATE_GRAPH_NODES=80):
        result = module.parallel_serve_experiment()
    # Bitwise identity is size-independent, so it IS asserted at smoke size
    # (unlike the wall-clock gate).
    assert result["all_identical"], "parallel smoke scatter diverged bitwise"
    return result


def _smoke_zero_copy_serve() -> Dict[str, Any]:
    module = _load("bench_zero_copy_serve.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=15,
                  QUERY_WALKERS=60, NUM_SHARDS=2, SERVE_WORKERS=1,
                  N_SOURCES=16, N_TOPK=2, N_BATCHES=1,
                  UPDATE_GRAPH_NODES=60):
        result = module.zero_copy_serve_experiment()
    # Bitwise identity is size-independent, so it IS asserted at smoke size
    # (unlike the payload/throughput gate).
    assert result["all_identical"], "zero-copy smoke scatter diverged bitwise"
    return result


def _smoke_scatter_backends() -> Dict[str, Any]:
    module = _load("bench_scatter_backends.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=15,
                  QUERY_WALKERS=60, NUM_SHARDS=2, WORKER_COUNTS=(1, 2),
                  BACKENDS=("threads",), N_SOURCES=16, N_TOPK=2,
                  KERNEL_BENCH_NODES=60, KERNEL_BENCH_REPEATS=1):
        result = module.scatter_backends_experiment()
    # Bitwise identity (of the scatter answers AND the kernel twins) is
    # size-independent, so it IS asserted at smoke size (unlike the
    # critical-path and jitted-speedup gates).
    assert result["all_identical"], "a scatter smoke backend diverged bitwise"
    assert result["kernels"]["bitwise_identical"], (
        "a kernel twin diverged bitwise from its Python oracle at smoke size"
    )
    return result


def _smoke_rebalance() -> Dict[str, Any]:
    module = _load("bench_rebalance.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=15,
                  QUERY_WALKERS=60, NUM_SHARDS=3, HOT_SOURCES=8, N_TOPK=2,
                  N_BATCHES=2):
        result = module.rebalance_experiment()
    # Bitwise identity and the planner's willingness to migrate a skewed
    # trace are size-independent, so they ARE asserted at smoke size
    # (unlike the timing-based p99 gate).
    assert result["all_identical"], "rebalance smoke scatter diverged bitwise"
    assert result["rebalance_applied"], (
        "rebalance smoke planner declined a skewed trace"
    )
    return result


def _smoke_scenarios() -> Dict[str, Any]:
    module = _load("bench_scenarios.py")
    with _patched(module, GRAPH_NODES=150, WALK_STEPS=3, INDEX_WALKERS=12,
                  QUERY_WALKERS=120, NUM_SHARDS=2, N_EVENTS=24,
                  BATCH_SIZE=8, ACCURACY_BUDGET=0.1,
                  APPROX_SCENARIOS=("zipf",)):
        result = module.scenarios_experiment()
    # Bitwise identity and the error budget are size-independent, so they
    # ARE asserted at smoke size (unlike the p99-improvement gate).
    assert result["all_identical"], "a scenario smoke replay diverged bitwise"
    assert result["approx_within_budget"], (
        "a scenario smoke approximate replay exceeded its accuracy budget"
    )
    return result


def _smoke_update_routing() -> Dict[str, Any]:
    module = _load("bench_update_routing.py")
    with _patched(module, N_NODES=240, CHAIN_LEN=24, WALK_STEPS=8,
                  N_BATCHES=3, MIN_SPEEDUP=0.0):
        result = module.update_routing_experiment()
    # Bitwise identity and eviction equality are size-independent, so they
    # ARE asserted at smoke size (unlike the routing-speedup gate).
    assert result["identity_mismatches"] == 0, (
        "update-routing smoke: walkers diverged bitwise between modes"
    )
    assert result["eviction_mismatches"] == 0, (
        "update-routing smoke: cache evictions differed between modes"
    )
    return result


def _smoke_sharded_build() -> Dict[str, Any]:
    module = _load("bench_sharded_build.py")
    with _patched(module, GRAPH_NODES=150, INDEX_WALKERS=20, WALK_STEPS=4,
                  SHARD_COUNTS=(2, 4)):
        result = module.sharded_build_experiment()
    # Bitwise identity is size-independent, so it IS asserted at smoke size
    # (unlike the wall-clock gate).
    assert result["all_identical"], "sharded smoke build diverged bitwise"
    return result


def _smoke_table1() -> Dict[str, Any]:
    _load("bench_table1_datasets.py")
    from repro.bench import experiments

    return experiments.dataset_table(max_tier="small")


def _smoke_table2() -> Dict[str, Any]:
    _load("bench_table2_parameters.py")
    from repro.bench import experiments

    return experiments.parameter_table()


def _smoke_table3() -> Dict[str, Any]:
    _load("bench_table3_broadcasting.py")
    from repro.bench import experiments

    return experiments.execution_model_table(
        "broadcasting", max_tier="small", pair_queries=1, source_queries=1
    )


def _smoke_table4() -> Dict[str, Any]:
    _load("bench_table4_rdd.py")
    from repro.bench import experiments

    return experiments.execution_model_table(
        "rdd", max_tier="small", pair_queries=1, source_queries=1
    )


def _smoke_table5() -> Dict[str, Any]:
    _load("bench_table5_comparison.py")
    from repro.bench import experiments

    return experiments.comparison_table(
        max_tier="small", pair_queries=1, source_queries=1
    )


#: One smoke runner per ``benchmarks/bench_*.py`` file.  Keys are file names
#: so the coverage check is a straight directory comparison.
SMOKE_RUNNERS: Dict[str, Callable[[], Any]] = {
    "bench_ablation_design_choices.py": _smoke_ablation,
    "bench_fig1_convergence.py": _smoke_fig1,
    "bench_fig2_scalability.py": _smoke_fig2,
    "bench_fig3_effectiveness.py": _smoke_fig3,
    "bench_http_serve.py": _smoke_http_serve,
    "bench_incremental_service.py": _smoke_incremental_service,
    "bench_parallel_serve.py": _smoke_parallel_serve,
    "bench_rebalance.py": _smoke_rebalance,
    "bench_scatter_backends.py": _smoke_scatter_backends,
    "bench_scenarios.py": _smoke_scenarios,
    "bench_service_throughput.py": _smoke_service_throughput,
    "bench_sharded_build.py": _smoke_sharded_build,
    "bench_table1_datasets.py": _smoke_table1,
    "bench_table2_parameters.py": _smoke_table2,
    "bench_table3_broadcasting.py": _smoke_table3,
    "bench_table4_rdd.py": _smoke_table4,
    "bench_table5_comparison.py": _smoke_table5,
    "bench_update_routing.py": _smoke_update_routing,
    "bench_zero_copy_serve.py": _smoke_zero_copy_serve,
}


def discover() -> List[str]:
    """All benchmark file names on disk."""
    return sorted(path.name for path in BENCH_DIR.glob("bench_*.py"))


def missing() -> List[str]:
    """Benchmark files without a smoke entry (should always be empty)."""
    return [name for name in discover() if name not in SMOKE_RUNNERS]


def run(name: str) -> Any:
    """Smoke one benchmark by file name; returns its (tiny) result.

    The result must be a non-empty dict — the minimal "the experiment still
    produces its shape" assertion shared by every entry.
    """
    result = SMOKE_RUNNERS[name]()
    assert isinstance(result, dict) and result, (
        f"{name} smoke produced no result"
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", default="",
                        help="run only benchmarks whose filename contains this")
    args = parser.parse_args(argv)

    dangling = missing()
    for name in dangling:
        print(f"error: {name} has no smoke entry in SMOKE_RUNNERS",
              file=sys.stderr)

    failures = len(dangling)
    for name in sorted(SMOKE_RUNNERS):
        if args.only not in name:
            continue
        start = time.perf_counter()
        try:
            run(name)
            status = "ok"
        except Exception as exc:  # noqa: BLE001 — report, keep smoking
            status = f"FAILED ({type(exc).__name__}: {exc})"
            failures += 1
        print(f"{name:<40} {status:<9} {time.perf_counter() - start:6.1f}s",
              flush=True)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
