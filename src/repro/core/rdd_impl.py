"""The *RDD* execution model.

In this model the graph is **not** replicated: its in-adjacency lives in a
partitioned RDD of ``(node, in_neighbour_array)`` records, which is the only
way to process graphs that do not fit in a single executor's memory (the
paper needs it for clue-web).  Every walk step becomes a join between the
current walker-position RDD and the adjacency RDD, and every aggregation a
``reduce_by_key`` — the engine's shuffle machinery is exercised end to end,
and the constant-factor overhead relative to the broadcasting model is
exactly the gap the paper's Tables 3/4 show.

Random-walk state is kept as collapsed counts ``(current_node, (source,
walker_count))`` rather than individual walkers, so the record count is
bounded by the number of distinct (position, source) pairs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.config import ClusterSpec, ExecutionOptions, SimRankParams
from repro.core.index import BuildInfo, DiagonalIndex
from repro.core.jacobi import jacobi_step
from repro.engine.context import ClusterContext
from repro.engine.rdd import RDD
from repro.errors import IndexNotBuiltError
from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner


def _spread_counts(
    rng: np.random.Generator, neighbors: np.ndarray, count: int
) -> List[Tuple[int, int]]:
    """Distribute ``count`` walkers uniformly at random over ``neighbors``.

    For hubs (degree much larger than the walker count) the walkers are
    sampled directly — O(count) — instead of drawing a full multinomial over
    the neighbour array — O(degree); the two procedures are statistically
    identical.
    """
    degree = len(neighbors)
    if degree == 0 or count <= 0:
        return []
    if degree == 1:
        return [(int(neighbors[0]), int(count))]
    if count < degree:
        picks = rng.integers(0, degree, size=count)
        chosen, chosen_counts = np.unique(picks, return_counts=True)
        return [
            (int(neighbors[offset]), int(walkers))
            for offset, walkers in zip(chosen.tolist(), chosen_counts.tolist())
        ]
    allocation = rng.multinomial(count, np.full(degree, 1.0 / degree))
    return [
        (int(node), int(walkers))
        for node, walkers in zip(neighbors.tolist(), allocation.tolist())
        if walkers > 0
    ]


class RDDModel:
    """CloudWalker with the graph stored in a partitioned RDD.

    The public interface mirrors :class:`~repro.core.broadcast_impl.BroadcastingModel`
    so the benchmark harness can swap execution models freely.
    """

    name = "rdd"

    def __init__(
        self,
        graph: DiGraph,
        params: Optional[SimRankParams] = None,
        context: Optional[ClusterContext] = None,
        cluster: Optional[ClusterSpec] = None,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        self.graph = graph
        self.params = params or SimRankParams.paper_defaults()
        self.context = context or ClusterContext(
            ExecutionOptions(backend="serial"), cluster=cluster
        )
        self.num_partitions = num_partitions or self.context.default_parallelism
        self.partitioner = partitioner or HashPartitioner(self.num_partitions)
        self.index: Optional[DiagonalIndex] = None
        self._adjacency_rdd: Optional[RDD] = None
        self._out_propagation_rdd: Optional[RDD] = None

    # ------------------------------------------------------------------ #
    # Distributed graph representations
    # ------------------------------------------------------------------ #
    def adjacency_rdd(self) -> RDD:
        """Cached RDD of ``(node, in_neighbour_array)`` records."""
        if self._adjacency_rdd is None:
            self._adjacency_rdd = self.context.graph_in_adjacency_rdd(
                self.graph, partitioner=self.partitioner
            ).persist()
        return self._adjacency_rdd

    def out_propagation_rdd(self) -> RDD:
        """Cached RDD used by MCSS reverse propagation.

        Records are ``(src, [(dst, 1/|In(dst)|), ...])`` — for each node, the
        out-edges with the weight its mass contributes to each destination
        under ``P^T``.
        """
        if self._out_propagation_rdd is None:
            in_degrees = self.graph.in_degrees().astype(np.float64)
            records = []
            for src in range(self.graph.n_nodes):
                targets = self.graph.out_neighbors(src)
                weighted = [
                    (int(dst), 1.0 / in_degrees[dst]) for dst in targets if in_degrees[dst] > 0
                ]
                records.append((src, weighted))
            self._out_propagation_rdd = self.context.parallelize(
                records, self.num_partitions, name="out_propagation"
            ).persist()
        return self._out_propagation_rdd

    # ------------------------------------------------------------------ #
    # Distributed random walks
    # ------------------------------------------------------------------ #
    def _walk_step(self, walkers_rdd: RDD, step: int) -> RDD:
        """One reverse step for the whole walker population."""
        seed = self.params.seed or 0

        def advance(record):
            node, (walker_groups, neighbor_lists) = record
            results = []
            # The adjacency side of the cogroup holds exactly one entry for
            # nodes that exist; nodes without walkers contribute nothing and
            # are skipped before any RNG work.
            if not walker_groups or not neighbor_lists:
                return results
            neighbors = neighbor_lists[0]
            rng = np.random.default_rng(seed * 1_000_003 + step * 7_919 + int(node))
            for source, count in walker_groups:
                for next_node, walkers in _spread_counts(rng, neighbors, count):
                    results.append(((next_node, source), walkers))
            return results

        stepped = (
            walkers_rdd.cogroup(self.adjacency_rdd(), self.num_partitions)
            .flat_map(advance)
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .map(lambda pair: (pair[0][0], (pair[0][1], pair[1])))
        )
        return stepped

    def walk_counts_by_step(
        self, sources: List[int], walkers_per_source: int
    ) -> List[List[Tuple[int, int, int]]]:
        """Distributed walk simulation.

        Returns, for each step ``t`` in ``0..T``, a list of
        ``(source, node, count)`` triples describing where the walkers that
        started at ``source`` are located.
        """
        walkers_rdd = self.context.parallelize(
            [(int(source), (int(source), walkers_per_source)) for source in sources],
            self.num_partitions,
            name="walkers",
        )
        per_step: List[List[Tuple[int, int, int]]] = []
        current = walkers_rdd
        for step in range(self.params.walk_steps + 1):
            snapshot = current.map(
                lambda record: (record[1][0], record[0], record[1][1])
            ).collect()
            per_step.append(snapshot)
            if not snapshot:
                # Every walker has died; the remaining steps are empty.
                per_step.extend(
                    [] for _ in range(self.params.walk_steps - step)
                )
                break
            if step < self.params.walk_steps:
                current = self._walk_step(current, step)
        return per_step

    # ------------------------------------------------------------------ #
    # Offline indexing
    # ------------------------------------------------------------------ #
    def build_index(self, index_walkers: Optional[int] = None) -> DiagonalIndex:
        """Run the offline phase entirely through RDD operations."""
        start = time.perf_counter()
        checkpoint = self.context.checkpoint()
        params = self.params
        n_nodes = self.graph.n_nodes
        walkers = index_walkers if index_walkers is not None else params.index_walkers

        per_step = self.walk_counts_by_step(list(range(n_nodes)), walkers)
        monte_carlo_seconds = time.perf_counter() - start

        # Assemble the rows of A from the per-step walker counts.
        contributions: Dict[Tuple[int, int], float] = {}
        decay = 1.0
        for step_records in per_step:
            for source, node, count in step_records:
                probability = count / walkers
                key = (source, node)
                contributions[key] = contributions.get(key, 0.0) + decay * probability * probability
            decay *= params.c
        if contributions:
            keys = np.array(list(contributions.keys()), dtype=np.int64)
            values = np.array(list(contributions.values()), dtype=np.float64)
            system = sparse.csr_matrix(
                (values, (keys[:, 0], keys[:, 1])), shape=(n_nodes, n_nodes)
            )
        else:
            system = sparse.csr_matrix((n_nodes, n_nodes), dtype=np.float64)

        # Parallel Jacobi over an RDD of row blocks.
        solve_start = time.perf_counter()
        x = np.full(n_nodes, 1.0 - params.c, dtype=np.float64)
        rhs = np.ones(n_nodes, dtype=np.float64)
        boundaries = np.linspace(0, n_nodes, self.num_partitions + 1, dtype=np.int64)
        blocks = [
            np.arange(boundaries[i], boundaries[i + 1], dtype=np.int64)
            for i in range(self.num_partitions)
        ]
        block_rows = [
            (block, system[block, :], rhs[block]) for block in blocks if len(block)
        ]
        for _ in range(params.jacobi_iterations):
            x_broadcast = self.context.broadcast(x)
            updates = (
                self.context.parallelize(block_rows, max(len(block_rows), 1), name="jacobi")
                .map(
                    lambda block_data: (
                        block_data[0],
                        jacobi_step(
                            block_data[1], block_data[0], block_data[2], x_broadcast.value
                        ),
                    )
                )
                .collect()
            )
            new_x = x.copy()
            for block_ids, block_values in updates:
                new_x[block_ids] = block_values
            x = new_x
        solve_seconds = time.perf_counter() - solve_start

        residual = (
            float(np.linalg.norm(system @ x - rhs) / max(np.linalg.norm(rhs), 1e-12))
            if n_nodes
            else float("nan")
        )
        phase_metrics = self.context.metrics_since(checkpoint, action="build-index")
        build_info = BuildInfo(
            execution_model=self.name,
            monte_carlo_seconds=monte_carlo_seconds,
            solve_seconds=solve_seconds,
            total_seconds=time.perf_counter() - start,
            jacobi_residual=residual,
            system_nnz=int(system.nnz),
            extras={
                "engine_jobs": phase_metrics.num_stages,
                "engine_tasks": phase_metrics.num_tasks,
                "num_partitions": self.num_partitions,
                "index_walkers_used": walkers,
                "shuffle_bytes": phase_metrics.total_shuffle_bytes,
            },
        )
        self.index = DiagonalIndex(
            diagonal=x,
            params=params,
            graph_name=self.graph.name,
            n_nodes=n_nodes,
            n_edges=self.graph.n_edges,
            build_info=build_info,
        )
        return self.index

    # ------------------------------------------------------------------ #
    # Online queries (distributed walks + distributed propagation)
    # ------------------------------------------------------------------ #
    def _require_index(self) -> DiagonalIndex:
        if self.index is None:
            raise IndexNotBuiltError("rdd-model query")
        return self.index

    def _query_distributions(
        self, source: int, walkers: Optional[int] = None
    ) -> List[Dict[int, float]]:
        walkers = walkers if walkers is not None else self.params.query_walkers
        per_step = self.walk_counts_by_step([source], walkers)
        distributions: List[Dict[int, float]] = []
        for step_records in per_step:
            distributions.append(
                {node: count / walkers for _source, node, count in step_records}
            )
        return distributions

    def single_pair(self, node_i: int, node_j: int,
                    walkers: Optional[int] = None) -> float:
        """MCSP with the walks executed as RDD jobs."""
        index = self._require_index()
        node_i = self.graph.check_node(node_i)
        node_j = self.graph.check_node(node_j)
        if node_i == node_j:
            return 1.0
        dist_i = self._query_distributions(node_i, walkers)
        dist_j = self._query_distributions(node_j, walkers)
        diagonal = index.diagonal
        total = 0.0
        decay = 1.0
        for step in range(self.params.walk_steps + 1):
            step_i, step_j = dist_i[step], dist_j[step]
            smaller, larger = (step_i, step_j) if len(step_i) < len(step_j) else (step_j, step_i)
            total += decay * sum(
                probability * larger[node] * diagonal[node]
                for node, probability in smaller.items()
                if node in larger
            )
            decay *= self.params.c
        return float(min(total, 1.0))

    def single_source(self, node: int, walkers: Optional[int] = None) -> np.ndarray:
        """MCSS with walks and reverse propagation executed as RDD jobs."""
        index = self._require_index()
        node = self.graph.check_node(node)
        distributions = self._query_distributions(node, walkers)
        diagonal = index.diagonal
        decay_powers = self.params.c ** np.arange(self.params.walk_steps + 1)
        propagation = self.out_propagation_rdd()

        # Reverse-Horner over RDDs: r <- P^T r + c^t (x ∘ v_t), t = T..0.
        current: Dict[int, float] = {}
        for step in range(self.params.walk_steps, -1, -1):
            if step < self.params.walk_steps and current:
                mass_rdd = self.context.parallelize(
                    list(current.items()), self.num_partitions, name="mcss-mass"
                )

                def push(record):
                    _node, (masses, edge_lists) = record
                    if not edge_lists:
                        return []
                    total_mass = sum(masses)
                    return [
                        (dst, total_mass * weight) for dst, weight in edge_lists[0]
                    ]

                pushed = (
                    mass_rdd.cogroup(propagation, self.num_partitions)
                    .flat_map(push)
                    .reduce_by_key(lambda a, b: a + b, self.num_partitions)
                    .collect()
                )
                current = dict(pushed)
            for walker_node, probability in distributions[step].items():
                current[walker_node] = current.get(walker_node, 0.0) + (
                    decay_powers[step] * diagonal[walker_node] * probability
                )
        scores = np.zeros(self.graph.n_nodes, dtype=np.float64)
        for score_node, value in current.items():
            scores[score_node] = value
        scores[node] = 1.0
        np.clip(scores, 0.0, 1.0, out=scores)
        return scores

    def all_pairs(self, nodes: Optional[List[int]] = None,
                  walkers: Optional[int] = None) -> np.ndarray:
        """MCAP: repeated distributed MCSS."""
        sources = list(range(self.graph.n_nodes)) if nodes is None else list(nodes)
        matrix = np.zeros((self.graph.n_nodes, self.graph.n_nodes), dtype=np.float64)
        for source in sources:
            matrix[source] = self.single_source(source, walkers=walkers)
        return matrix

    # ------------------------------------------------------------------ #
    def phase_metrics(self, checkpoint: int = 0):
        """Merged engine metrics since ``checkpoint`` (for the cost model)."""
        return self.context.metrics_since(checkpoint, action=f"{self.name}-phase")

    def shutdown(self) -> None:
        """Release the engine context."""
        self.context.shutdown()
