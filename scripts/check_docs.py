#!/usr/bin/env python3
"""Verify that every file path cited by the documentation exists.

Documentation rots when the files it points at move; this checker keeps the
docs honest by extracting every path-like reference from ``docs/*.md``,
``README.md`` and the module docstrings that cite ``docs/`` files, and
failing when a referenced path does not resolve.  It runs inside the test
suite (``tests/test_docs.py``) and standalone::

    python scripts/check_docs.py            # check, exit 1 on dangling refs
    python scripts/check_docs.py --verbose  # also list every checked ref
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

# Markdown links whose target looks like a relative file path (not a URL).
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
# Inline-code path references like `src/repro/core/walks.py` or `docs/DESIGN.md`.
_CODE_PATH = re.compile(r"`([\w./-]+/[\w./-]+\.[A-Za-z0-9]+)`")
# docs/ citations inside Python docstrings/comments, e.g. ``docs/DESIGN.md``.
_DOCS_IN_SOURCE = re.compile(r"docs/[\w.-]+\.md")


def _doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        files.extend(sorted(docs_dir.glob("*.md")))
    return [path for path in files if path.exists()]


def _iter_markdown_refs(path: Path) -> Iterator[str]:
    text = path.read_text(encoding="utf-8")
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if "://" not in target:
            yield target
    for match in _CODE_PATH.finditer(text):
        yield match.group(1)


def _iter_source_refs() -> Iterator[Tuple[Path, str]]:
    for source in sorted((REPO_ROOT / "src").rglob("*.py")):
        for match in _DOCS_IN_SOURCE.finditer(source.read_text(encoding="utf-8")):
            yield source, match.group(0)


def check_docs(verbose: bool = False) -> List[str]:
    """Return a list of human-readable problems (empty = docs are clean)."""
    problems: List[str] = []
    checked = 0
    for doc in _doc_files():
        for ref in _iter_markdown_refs(doc):
            resolved = (doc.parent / ref).resolve() if not ref.startswith("/") \
                else Path(ref)
            checked += 1
            if verbose:
                print(f"{doc.relative_to(REPO_ROOT)}: {ref}")
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)} references {ref!r}, "
                    f"which does not exist"
                )
    for source, ref in _iter_source_refs():
        checked += 1
        if verbose:
            print(f"{source.relative_to(REPO_ROOT)}: {ref}")
        if not (REPO_ROOT / ref).exists():
            problems.append(
                f"{source.relative_to(REPO_ROOT)} cites {ref!r}, "
                f"which does not exist"
            )
    if verbose:
        print(f"checked {checked} references")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="list every reference as it is checked")
    args = parser.parse_args(argv)
    problems = check_docs(verbose=args.verbose)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print(f"docs OK ({len(_doc_files())} files checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
