"""Unit tests for DiagonalIndex persistence and the DiagonalEstimator."""

import numpy as np
import pytest

from repro.config import SimRankParams
from repro.core.diagonal import DiagonalEstimator, build_diagonal_index, exact_diagonal
from repro.core.index import BuildInfo, DiagonalIndex
from repro.errors import CloudWalkerError, ConfigurationError
from repro.graph import generators
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(60, out_degree=4, seed=8)


@pytest.fixture(scope="module")
def params():
    return SimRankParams(c=0.6, walk_steps=5, jacobi_iterations=4,
                         index_walkers=150, query_walkers=500, seed=5)


class TestDiagonalEstimator:
    def test_build_produces_valid_index(self, graph, params):
        index = build_diagonal_index(graph, params)
        assert index.n_nodes == graph.n_nodes
        assert index.graph_name == graph.name
        assert index.diagonal.shape == (graph.n_nodes,)
        # Diagonal corrections are positive and at most 1.
        assert (index.diagonal > 0).all()
        assert (index.diagonal <= 1.0 + 1e-6).all()

    def test_build_info_populated(self, graph, params):
        index = build_diagonal_index(graph, params)
        info = index.build_info
        assert info.execution_model == "local"
        assert info.total_seconds > 0
        assert info.system_nnz > 0
        assert info.jacobi_residual < 0.1

    def test_exact_mode_close_to_direct_solution(self, graph, params):
        exact = exact_diagonal(graph, params)
        estimated = build_diagonal_index(graph, params.with_(index_walkers=3000)).diagonal
        assert np.abs(exact - estimated).max() < 0.1
        assert np.abs(exact - estimated).mean() < 0.02

    def test_monte_carlo_estimate_close_to_exact(self, graph, params):
        jacobi_exact_system = DiagonalEstimator(
            graph, params=params, exact=True, solver="jacobi"
        ).build()
        assert np.abs(jacobi_exact_system.diagonal - exact_diagonal(graph, params)).max() < 0.05

    def test_zero_in_degree_node_has_unit_correction(self, params):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        index = build_diagonal_index(graph, params, exact=True, solver="exact")
        # Node 0 has no in-links: a_0 = e_0 so x_0 = 1 exactly.
        assert index.diagonal[0] == pytest.approx(1.0)

    def test_solver_choices(self, graph, params):
        for solver in ("jacobi", "gauss-seidel", "exact"):
            index = build_diagonal_index(graph, params, exact=True, solver=solver)
            assert index.build_info.extras["solver"] == solver

    def test_invalid_solver_rejected(self, graph, params):
        with pytest.raises(ConfigurationError):
            DiagonalEstimator(graph, params, solver="quantum")

    def test_empty_graph(self, params):
        index = build_diagonal_index(DiGraph(0, []), params)
        assert index.n_nodes == 0
        assert index.diagonal.shape == (0,)

    def test_deterministic_given_seed(self, graph, params):
        first = build_diagonal_index(graph, params).diagonal
        second = build_diagonal_index(graph, params).diagonal
        assert np.array_equal(first, second)


class TestDiagonalIndex:
    def test_validate_for_wrong_graph_raises(self, graph, params):
        index = build_diagonal_index(graph, params)
        other = generators.cycle_graph(10)
        with pytest.raises(CloudWalkerError):
            index.validate_for(other)

    def test_wrong_length_diagonal_rejected(self, params):
        with pytest.raises(CloudWalkerError):
            DiagonalIndex(
                diagonal=np.ones(3), params=params, graph_name="g",
                n_nodes=5, n_edges=4,
            )

    def test_summary_fields(self, graph, params):
        index = build_diagonal_index(graph, params)
        summary = index.summary()
        assert summary["graph_name"] == graph.name
        assert summary["n_nodes"] == graph.n_nodes
        assert 0 < summary["diag_min"] <= summary["diag_max"] <= 1.0 + 1e-6
        assert summary["index_bytes"] == graph.n_nodes * 8

    def test_save_load_round_trip(self, graph, params, tmp_path):
        index = build_diagonal_index(graph, params)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = DiagonalIndex.load(path)
        assert np.allclose(loaded.diagonal, index.diagonal)
        assert loaded.params == index.params
        assert loaded.graph_name == index.graph_name
        assert loaded.n_nodes == index.n_nodes
        assert loaded.build_info.execution_model == "local"
        assert loaded.build_info.system_nnz == index.build_info.system_nnz

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CloudWalkerError):
            DiagonalIndex.load(tmp_path / "nope.npz")

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(CloudWalkerError):
            DiagonalIndex.load(path)

    def test_build_info_to_dict(self):
        info = BuildInfo(execution_model="local", total_seconds=1.5,
                         extras={"foo": 1})
        record = info.to_dict()
        assert record["execution_model"] == "local"
        assert record["foo"] == 1
