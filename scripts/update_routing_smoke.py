#!/usr/bin/env python3
"""Update-routing smoke: both reachability modes, bitwise-compared.

Drives two identically seeded incremental walkers — one with
``reachability="bfs"`` (the frontier-sweep oracle), one with
``reachability="interval"`` (the pre-order window labels) — through the same
storm of edge batches on a tiny graph, asserting after *every* batch that

* the affected-source sets are identical,
* the maintained linear systems are byte-equal (data/indices/indptr),
* the solved index diagonals are byte-equal, and
* a per-node distribution cache invalidated with each mode's affected set
  loses exactly the same keys.

This is the cheap always-on guard for the switch's core contract: the
interval path may only ever be a faster route to the *identical* result.
Exit code 0 on success, 1 on any divergence; runs in a couple of seconds.

Usage::

    python scripts/update_routing_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

N_NODES = 150
N_BATCHES = 5
EDGES_PER_BATCH = 3
WALK_STEPS = 6


def main() -> int:
    import numpy as np

    from repro.config import SimRankParams
    from repro.core.incremental import IncrementalCloudWalker
    from repro.graph import generators

    params = SimRankParams(c=0.6, walk_steps=WALK_STEPS, jacobi_iterations=3,
                           index_walkers=10, query_walkers=10, seed=7)
    graph = generators.copying_model_graph(N_NODES, out_degree=4, seed=7)
    rng = np.random.default_rng(7)
    hot = rng.permutation(N_NODES)[: N_NODES // 10]

    walkers = {}
    for mode in ("bfs", "interval"):
        walker = IncrementalCloudWalker(
            graph, params=params, stream_per_source=True, warm_start=False,
            reachability=mode,
        )
        walker.build()
        walkers[mode] = walker

    failures = 0
    for step in range(N_BATCHES):
        batch = []
        while len(batch) < EDGES_PER_BATCH:
            u = int(rng.integers(0, N_NODES))
            v = int(rng.choice(hot))
            if u != v:
                batch.append((u, v))
        infos = {mode: walkers[mode].add_edges(batch)
                 for mode in ("bfs", "interval")}
        if infos["bfs"]["affected"] != infos["interval"]["affected"]:
            print(f"FAIL batch {step}: affected sets differ", file=sys.stderr)
            failures += 1
        evictions = {
            mode: frozenset(
                node for node in range(walkers[mode].graph.n_nodes)
                if node in infos[mode]["affected"]
            )
            for mode in ("bfs", "interval")
        }
        if evictions["bfs"] != evictions["interval"]:
            print(f"FAIL batch {step}: cache evictions differ",
                  file=sys.stderr)
            failures += 1
        left, right = walkers["bfs"], walkers["interval"]
        if not (np.array_equal(left.system.data, right.system.data)
                and np.array_equal(left.system.indices, right.system.indices)
                and np.array_equal(left.system.indptr, right.system.indptr)):
            print(f"FAIL batch {step}: linear systems diverged",
                  file=sys.stderr)
            failures += 1
        if not np.array_equal(left.index.diagonal, right.index.diagonal):
            print(f"FAIL batch {step}: index diagonals diverged",
                  file=sys.stderr)
            failures += 1

    if failures:
        print(f"update-routing smoke: {failures} divergence(s)",
              file=sys.stderr)
        return 1
    print(f"update-routing smoke: {N_BATCHES} batches, both modes "
          f"bitwise-identical (graph {N_NODES} nodes, T={WALK_STEPS})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
