"""Shared fixtures for core tests."""

import numpy as np
import pytest

from repro.config import SimRankParams
from repro.graph import generators


@pytest.fixture(scope="session")
def small_params() -> SimRankParams:
    """Cheap parameters that keep Monte-Carlo tests fast but meaningful."""
    return SimRankParams(
        c=0.6, walk_steps=6, jacobi_iterations=5, index_walkers=80,
        query_walkers=800, seed=7,
    )


@pytest.fixture(scope="session")
def small_graph():
    """A web-like graph small enough for exact all-pairs ground truth."""
    return generators.copying_model_graph(80, out_degree=5, copy_prob=0.6, seed=11)


@pytest.fixture(scope="session")
def ground_truth_simrank(small_graph):
    """Jeh-Widom SimRank matrix computed with networkx (reference)."""
    import networkx as nx

    similarity = nx.simrank_similarity(
        small_graph.to_networkx(), importance_factor=0.6,
        max_iterations=200, tolerance=1e-10,
    )
    n = small_graph.n_nodes
    return np.array([[similarity[i][j] for j in range(n)] for i in range(n)])
