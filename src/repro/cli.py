"""Command-line interface for the CloudWalker reproduction.

The CLI covers the operational workflow a user of the original system would
have: inspect datasets, generate or ingest a graph, build the offline index,
validate it, and answer queries — all from the shell.

Examples
--------
::

    python -m repro datasets
    python -m repro generate --model copying --nodes 1000 --output graph.tsv
    python -m repro stats --graph graph.tsv
    python -m repro index --graph graph.tsv --output index.npz --walkers 100
    python -m repro validate --graph graph.tsv --index index.npz
    python -m repro query pair --graph graph.tsv --index index.npz --source 3 --target 17
    python -m repro query topk --graph graph.tsv --index index.npz --source 3 --k 10
    python -m repro query-batch --graph graph.tsv --index index.npz --queries queries.txt
    python -m repro serve --graph graph.tsv --index index.npz
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.config import ServiceParams, SimRankParams
from repro.core.cloudwalker import CloudWalker
from repro.core.index import DiagonalIndex
from repro.errors import CloudWalkerError
from repro.graph import datasets, generators, io, stats
from repro.graph.digraph import DiGraph


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _load_graph(args: argparse.Namespace) -> DiGraph:
    """Load the graph referenced by ``--graph`` or ``--dataset``."""
    if getattr(args, "dataset", None):
        return datasets.load(args.dataset)
    path = args.graph
    if path is None:
        raise CloudWalkerError("either --graph or --dataset is required")
    if str(path).endswith(".npz"):
        return io.load_binary(path)
    return io.read_edge_list(path, relabel=False)


def _params_from_args(args: argparse.Namespace) -> SimRankParams:
    defaults = SimRankParams.paper_defaults()
    return SimRankParams(
        c=getattr(args, "decay", defaults.c),
        walk_steps=getattr(args, "steps", defaults.walk_steps),
        jacobi_iterations=getattr(args, "jacobi", defaults.jacobi_iterations),
        index_walkers=getattr(args, "walkers", defaults.index_walkers),
        query_walkers=getattr(args, "query_walkers", defaults.query_walkers),
        seed=getattr(args, "seed", defaults.seed),
    )


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="edge-list (.tsv) or binary (.npz) graph file")
    parser.add_argument(
        "--dataset", help="name of a registered dataset stand-in (see 'datasets')"
    )


def _add_param_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = SimRankParams.paper_defaults()
    parser.add_argument("--decay", type=float, default=defaults.c,
                        help="SimRank decay factor c (default: %(default)s)")
    parser.add_argument("--steps", type=int, default=defaults.walk_steps,
                        help="walk steps T (default: %(default)s)")
    parser.add_argument("--jacobi", type=int, default=defaults.jacobi_iterations,
                        help="Jacobi iterations L (default: %(default)s)")
    parser.add_argument("--walkers", type=int, default=defaults.index_walkers,
                        help="index walkers R (default: %(default)s)")
    parser.add_argument("--query-walkers", dest="query_walkers", type=int,
                        default=defaults.query_walkers,
                        help="query walkers R' (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=defaults.seed,
                        help="random seed (default: %(default)s)")


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_datasets(args: argparse.Namespace, out) -> int:
    print(f"{'name':<15} {'tier':<7} {'paper size':<22} description", file=out)
    for name in datasets.names():
        spec = datasets.get(name)
        paper = f"{spec.paper.human_nodes} nodes / {spec.paper.human_edges} edges"
        print(f"{spec.name:<15} {spec.tier:<7} {paper:<22} {spec.description[:60]}",
              file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    builders = {
        "erdos-renyi": lambda: generators.erdos_renyi_graph(
            args.nodes, avg_degree=args.degree, seed=args.seed),
        "preferential": lambda: generators.preferential_attachment_graph(
            args.nodes, out_degree=max(int(args.degree), 1), seed=args.seed),
        "power-law": lambda: generators.power_law_graph(
            args.nodes, avg_degree=args.degree, seed=args.seed),
        "copying": lambda: generators.copying_model_graph(
            args.nodes, out_degree=max(int(args.degree), 1), seed=args.seed),
    }
    if args.model not in builders:
        print(f"unknown model {args.model!r}; choose from {sorted(builders)}", file=out)
        return 2
    graph = builders[args.model]()
    if args.output.endswith(".npz"):
        io.save_binary(graph, args.output)
    else:
        io.write_edge_list(graph, args.output)
    print(f"wrote {graph.n_nodes} nodes / {graph.n_edges} edges to {args.output}",
          file=out)
    return 0


def _cmd_stats(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    info = stats.compute_stats(graph)
    for key, value in info.to_dict().items():
        print(f"{key:<28} {value}", file=out)
    return 0


def _cmd_index(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    params = _params_from_args(args)
    walker = CloudWalker(graph, params=params, mode=args.mode)
    start = time.perf_counter()
    index = walker.build_index()
    elapsed = time.perf_counter() - start
    index.save(args.output)
    print(f"indexed {graph.n_nodes} nodes / {graph.n_edges} edges "
          f"in {elapsed:.2f}s using the {args.mode!r} execution model", file=out)
    print(f"index written to {args.output} "
          f"({index.memory_bytes / 1024:.1f} KiB, residual "
          f"{index.build_info.jacobi_residual:.4f})", file=out)
    walker.shutdown()
    return 0


def _cmd_validate(args: argparse.Namespace, out) -> int:
    from repro.analysis.validation import validate_index

    graph = _load_graph(args)
    index = DiagonalIndex.load(args.index)
    report = validate_index(graph, index, spot_check_pairs=args.spot_checks)
    for key, value in report.checks.items():
        print(f"{key:<30} {value:.6f}", file=out)
    for issue in report.issues:
        print(str(issue), file=out)
    print("OK" if report.ok else "FAILED", file=out)
    return 0 if report.ok else 1


def _cmd_query(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    params = _params_from_args(args)
    walker = CloudWalker(graph, params=params)
    walker.load_index(args.index)
    if args.query_type == "pair":
        if args.target is None:
            print("query pair requires --target", file=out)
            return 2
        value = walker.single_pair(args.source, args.target)
        print(f"s({args.source}, {args.target}) = {value:.6f}", file=out)
    elif args.query_type == "source":
        scores = walker.single_source(args.source)
        print(f"single-source scores from node {args.source}: "
              f"mean={scores.mean():.6f} max={scores.max():.6f}", file=out)
    else:  # topk
        for rank, (node, score) in enumerate(walker.top_k(args.source, k=args.k), 1):
            print(f"{rank:>3}. node {node:<8} score {score:.6f}", file=out)
    return 0


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = ServiceParams()
    parser.add_argument("--cache-capacity", dest="cache_capacity", type=int,
                        default=defaults.cache_capacity,
                        help="walk-distribution cache entries, 0 disables "
                             "(default: %(default)s)")
    parser.add_argument("--max-batch-size", dest="max_batch_size", type=int,
                        default=defaults.max_batch_size,
                        help="max sources per vectorised walk batch "
                             "(default: %(default)s)")


def _make_service(args: argparse.Namespace):
    from repro.service import QueryService

    graph = _load_graph(args)
    service_params = ServiceParams(
        cache_capacity=args.cache_capacity, max_batch_size=args.max_batch_size
    )
    # Parameters default to the ones persisted in the index so a cold-started
    # service answers exactly like the process that built the index.
    return QueryService.from_index_file(
        graph, args.index, service_params=service_params
    )


def _format_answer(query, answer) -> str:
    from repro.service import PairQuery, SourceQuery

    if isinstance(query, PairQuery):
        return f"s({query.source}, {query.target}) = {answer:.6f}"
    if isinstance(query, SourceQuery):
        return (f"source {query.source}: mean={answer.mean():.6f} "
                f"max={answer.max():.6f}")
    ranked = " ".join(f"{node}={score:.6f}" for node, score in answer)
    return f"topk {query.source} (k={query.k}): {ranked}"


def _print_service_stats(service, out) -> None:
    stats = service.stats()
    print(f"served {stats['queries']} queries in {stats['batches']} batches "
          f"({stats['pair_queries']} pair / {stats['source_queries']} source / "
          f"{stats['topk_queries']} topk)", file=out)
    print(f"walk simulations: {stats['sources_simulated']} run, "
          f"{stats['sources_deduplicated']} deduplicated, "
          f"cache hit rate {stats['cache_hit_rate']:.2%} "
          f"({stats['cache_size']}/{stats['cache_capacity']} entries)", file=out)


def _cmd_query_batch(args: argparse.Namespace, out) -> int:
    from repro.service import parse_query

    if args.queries == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.queries, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise CloudWalkerError(f"cannot read queries file: {exc}") from exc
    queries = [parse_query(line, default_k=args.k) for line in lines
               if line.strip() and not line.lstrip().startswith("#")]
    if not queries:
        print("no queries found", file=out)
        return 2
    service = _make_service(args)
    start = time.perf_counter()
    answers = service.run_batch(queries)
    elapsed = time.perf_counter() - start
    for query, answer in zip(queries, answers):
        print(_format_answer(query, answer), file=out)
    print(f"answered {len(queries)} queries in {elapsed:.3f}s "
          f"({len(queries) / max(elapsed, 1e-9):.1f} q/s)", file=out)
    _print_service_stats(service, out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.service import parse_query

    service = _make_service(args)
    print(f"serving SimRank queries over {service.graph.name!r} "
          f"({service.graph.n_nodes} nodes); one query per line "
          "('pair i j', 'source i', 'topk i [k]'), 'stats' or 'quit'",
          file=out)
    for line in sys.stdin:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() in ("quit", "exit"):
            break
        if line.lower() == "stats":
            _print_service_stats(service, out)
            continue
        try:
            query = parse_query(line, default_k=args.k)
            print(_format_answer(query, service.run_batch([query])[0]), file=out)
        except CloudWalkerError as exc:
            print(f"error: {exc}", file=out)
    _print_service_stats(service, out)
    return 0


# --------------------------------------------------------------------------- #
# Parser wiring
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CloudWalker: parallel SimRank computation (paper reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list registered dataset stand-ins")

    generate = subparsers.add_parser("generate", help="generate a synthetic graph")
    generate.add_argument("--model", default="copying",
                          help="erdos-renyi | preferential | power-law | copying")
    generate.add_argument("--nodes", type=int, default=1_000)
    generate.add_argument("--degree", type=float, default=8.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)

    stats_parser = subparsers.add_parser("stats", help="print graph statistics")
    _add_graph_arguments(stats_parser)

    index = subparsers.add_parser("index", help="build the CloudWalker index")
    _add_graph_arguments(index)
    _add_param_arguments(index)
    index.add_argument("--mode", default="local",
                       choices=["local", "broadcasting", "rdd"],
                       help="execution model (default: %(default)s)")
    index.add_argument("--output", required=True, help="where to write the .npz index")

    validate = subparsers.add_parser("validate", help="validate an index against a graph")
    _add_graph_arguments(validate)
    validate.add_argument("--index", required=True)
    validate.add_argument("--spot-checks", dest="spot_checks", type=int, default=20)

    query = subparsers.add_parser("query", help="answer SimRank queries")
    query.add_argument("query_type", choices=["pair", "source", "topk"])
    _add_graph_arguments(query)
    _add_param_arguments(query)
    query.add_argument("--index", required=True)
    query.add_argument("--source", type=int, required=True)
    query.add_argument("--target", type=int)
    query.add_argument("--k", type=int, default=10)

    query_batch = subparsers.add_parser(
        "query-batch",
        help="answer a file of queries as one deduplicated, cached batch",
    )
    _add_graph_arguments(query_batch)
    _add_service_arguments(query_batch)
    query_batch.add_argument("--index", required=True)
    query_batch.add_argument(
        "--queries", required=True,
        help="file of query lines ('pair i j' | 'source i' | 'topk i [k]'); "
             "'-' reads stdin",
    )
    query_batch.add_argument("--k", type=int, default=10,
                             help="default k for 'topk i' lines without one")

    serve = subparsers.add_parser(
        "serve",
        help="interactive query service: read query lines from stdin "
             "against a persistently loaded index",
    )
    _add_graph_arguments(serve)
    _add_service_arguments(serve)
    serve.add_argument("--index", required=True)
    serve.add_argument("--k", type=int, default=10,
                       help="default k for 'topk i' lines without one")

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "index": _cmd_index,
    "validate": _cmd_validate,
    "query": _cmd_query,
    "query-batch": _cmd_query_batch,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except CloudWalkerError as exc:
        print(f"error: {exc}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
