"""The tier-1 entry point composes its pytest command correctly.

The script itself runs the whole suite, so these tests only exercise its
*argument construction* — in particular that the coverage gate is applied
exactly when ``pytest-cov`` is importable, covers the serving/core layers,
and carries a hard floor.  (Re-entrantly running the suite from inside the
suite would be a fork bomb.)
"""

import importlib.util
import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parents[1] / "scripts"


def _load_tier1():
    spec = importlib.util.spec_from_file_location("tier1", SCRIPTS_DIR / "tier1.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_coverage_gate_applied_when_plugin_available():
    tier1 = _load_tier1()
    args = tier1.coverage_args(available=True)
    for target in ("repro.service", "repro.core"):
        assert f"--cov={target}" in args
    assert f"--cov-fail-under={tier1.COVERAGE_FLOOR}" in args
    assert tier1.COVERAGE_FLOOR >= 80, "the floor must stay a real gate"


def test_coverage_gate_skipped_when_plugin_missing():
    tier1 = _load_tier1()
    assert tier1.coverage_args(available=False) == []


def test_command_is_the_roadmap_tier1_invocation():
    tier1 = _load_tier1()
    command = tier1.build_command(["-k", "sharded"])
    assert command[:5] == [sys.executable, "-m", "pytest", "-x", "-q"]
    assert command[-2:] == ["-k", "sharded"]


def test_detection_matches_environment():
    tier1 = _load_tier1()
    expected = importlib.util.find_spec("pytest_cov") is not None
    assert tier1.coverage_available() == expected
    # Auto-detection drives the default argument construction.
    assert bool(tier1.coverage_args()) == expected
