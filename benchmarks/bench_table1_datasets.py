"""T1 — the paper's dataset table (wiki-vote … clue-web).

Regenerates the "Dataset / Nodes / Edges / Size" table, showing the paper's
original statistics next to the stand-in graphs this reproduction runs on.
"""

from repro.bench import experiments, reporting


def test_table1_datasets(benchmark, results_dir):
    result = benchmark.pedantic(
        experiments.dataset_table, kwargs={"max_tier": "large"}, rounds=1, iterations=1
    )
    rendered = reporting.format_table(
        result["rows"],
        columns=[
            "dataset", "paper_nodes", "paper_edges", "paper_size",
            "standin_nodes", "standin_edges", "avg_in_degree", "edge_scale_factor",
        ],
        title="Table 1 — datasets (paper originals vs stand-ins)",
    )
    reporting.save_results("table1_datasets", result, rendered, results_dir)
    print("\n" + rendered)

    rows = result["rows"]
    # The paper's table lists five datasets in increasing size order; the
    # stand-ins must preserve that ordering.
    assert [row["dataset"] for row in rows] == [
        "wiki-vote", "wiki-talk", "twitter-2010", "uk-union", "clue-web",
    ]
    edges = [row["standin_edges"] for row in rows]
    assert edges == sorted(edges)
    assert all(row["edge_scale_factor"] > 1 for row in rows)
