"""Synthetic directed-graph generators.

The paper evaluates CloudWalker on five web/social graphs (wiki-vote,
wiki-talk, twitter-2010, uk-union, clue-web).  Those datasets are not
shippable here, so :mod:`repro.graph.datasets` builds laptop-scale stand-ins
from the generators in this module.  The generators aim for the structural
properties that matter to SimRank-style random walks:

* heavy-tailed in-degree distributions (power-law / preferential attachment),
* a non-trivial fraction of nodes with zero in-degree (walk absorption),
* locally dense neighbourhoods (copying model).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_graph(n: int, avg_degree: float, seed: Optional[int] = None,
                      name: str = "erdos-renyi") -> DiGraph:
    """Directed Erdős–Rényi graph with expected out-degree ``avg_degree``.

    Edges are sampled by drawing ``round(n * avg_degree)`` random (src, dst)
    pairs; duplicates are removed by :class:`DiGraph`, so the realised edge
    count can be slightly lower than the target.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if avg_degree < 0:
        raise ConfigurationError(f"avg_degree must be >= 0, got {avg_degree}")
    rng = _rng(seed)
    m = int(round(n * avg_degree))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    keep = src != dst
    edges = np.column_stack([src[keep], dst[keep]])
    return DiGraph(n, edges, name=name)


def preferential_attachment_graph(
    n: int, out_degree: int, seed: Optional[int] = None,
    name: str = "preferential-attachment",
) -> DiGraph:
    """Directed Barabási–Albert-style graph.

    Nodes arrive one at a time; each new node emits ``out_degree`` edges whose
    targets are chosen proportionally to (1 + current in-degree), which
    produces a power-law in-degree distribution similar to web graphs.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if out_degree < 1:
        raise ConfigurationError(f"out_degree must be >= 1, got {out_degree}")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    # Repeated-targets list implements preferential attachment in O(1)/draw.
    targets: List[int] = [0]
    for src in range(1, n):
        k = min(out_degree, src)
        picks = rng.integers(0, len(targets), size=k)
        for pick in picks:
            dst = targets[pick]
            if dst != src:
                edges.append((src, dst))
                targets.append(dst)
        targets.append(src)
    return DiGraph(n, edges, name=name)


def power_law_graph(
    n: int,
    avg_degree: float,
    exponent: float = 2.2,
    seed: Optional[int] = None,
    name: str = "power-law",
) -> DiGraph:
    """Directed configuration-model graph with power-law in-degrees.

    In-degree targets are drawn from a discrete power law with the given
    ``exponent`` and rescaled so the mean matches ``avg_degree``; sources are
    drawn uniformly.  This mimics the skew of web-crawl in-link counts, the
    property that drives SimRank walk behaviour.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if avg_degree <= 0:
        raise ConfigurationError(f"avg_degree must be > 0, got {avg_degree}")
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must be > 1, got {exponent}")
    rng = _rng(seed)
    # Pareto-distributed raw weights, clipped so no node takes over the graph.
    raw = rng.pareto(exponent - 1.0, size=n) + 1.0
    raw = np.minimum(raw, n / 4.0)
    weights = raw / raw.sum()
    m = int(round(n * avg_degree))
    dst = rng.choice(n, size=m, p=weights)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    keep = src != dst
    edges = np.column_stack([src[keep], dst[keep]])
    return DiGraph(n, edges, name=name)


def copying_model_graph(
    n: int,
    out_degree: int = 8,
    copy_prob: float = 0.5,
    seed: Optional[int] = None,
    name: str = "copying-model",
) -> DiGraph:
    """Kleinberg-style copying model: web-like graph with shared in-links.

    Each new node picks a random "prototype" node and, for each of its
    ``out_degree`` edges, either copies one of the prototype's out-links
    (probability ``copy_prob``) or links to a uniformly random earlier node.
    Copying creates many node pairs with common in-neighbours, which is
    exactly the structure SimRank scores highly — useful for effectiveness
    experiments.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if out_degree < 1:
        raise ConfigurationError(f"out_degree must be >= 1, got {out_degree}")
    if not 0.0 <= copy_prob <= 1.0:
        raise ConfigurationError(f"copy_prob must be in [0, 1], got {copy_prob}")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    out_lists: List[List[int]] = [[] for _ in range(n)]
    # Seed the process with a small cycle so early nodes have out-links.
    seed_size = min(out_degree + 1, n)
    for node in range(seed_size):
        dst = (node + 1) % seed_size
        if dst != node:
            edges.append((node, dst))
            out_lists[node].append(dst)
    for src in range(seed_size, n):
        prototype = int(rng.integers(0, src))
        proto_links = out_lists[prototype]
        for _ in range(min(out_degree, src)):
            if proto_links and rng.random() < copy_prob:
                dst = int(proto_links[int(rng.integers(0, len(proto_links)))])
            else:
                dst = int(rng.integers(0, src))
            if dst != src:
                edges.append((src, dst))
                out_lists[src].append(dst)
    return DiGraph(n, edges, name=name)


def community_graph(
    n_communities: int,
    community_size: int,
    p_in: float = 0.3,
    p_out: float = 0.01,
    seed: Optional[int] = None,
    name: str = "community",
) -> DiGraph:
    """Planted-partition directed graph with known community structure.

    Used by the effectiveness benchmark (figure F3): node pairs inside the
    same community form the ground-truth "similar" pairs against which
    SimRank and co-citation rankings are scored.
    """
    if n_communities < 1 or community_size < 2:
        raise ConfigurationError(
            "community_graph needs n_communities >= 1 and community_size >= 2"
        )
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ConfigurationError(
            f"expected 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    rng = _rng(seed)
    n = n_communities * community_size
    edges: List[Tuple[int, int]] = []
    community = np.repeat(np.arange(n_communities), community_size)
    # Sample intra-community edges densely and inter-community edges sparsely.
    for src in range(n):
        same = np.flatnonzero(community == community[src])
        other = np.flatnonzero(community != community[src])
        intra = same[rng.random(len(same)) < p_in]
        inter = other[rng.random(len(other)) < p_out]
        for dst in np.concatenate([intra, inter]):
            if int(dst) != src:
                edges.append((src, int(dst)))
    graph = DiGraph(n, edges, name=name)
    return graph


def hierarchical_citation_graph(
    n_categories: int = 8,
    items_per_category: int = 30,
    users_per_category: int = 50,
    picks_per_user: int = 2,
    noise: float = 0.1,
    seed: Optional[int] = None,
    name: str = "hierarchical-citation",
) -> Tuple[DiGraph, np.ndarray]:
    """Two-level citation graph where similarity is *indirect*.

    Three layers of nodes:

    * items ``0 .. n_categories * items_per_category - 1`` (the query targets),
    * users, each affiliated with one category, who cite ``picks_per_user``
      items (mostly from their own category, sometimes random noise),
    * one group node per category pointing at its users.

    Items of the same category are rarely cited by the *same* user (users
    cite only a couple of items each), so co-citation between them is mostly
    zero; but they are cited by *similar* users (users sharing a group), which
    SimRank's recursive definition picks up.  This is exactly the
    "similar if referenced by similar objects" behaviour the paper's
    motivation highlights, and the effectiveness benchmark (F3) uses this
    generator as its ground-truth workload.

    Returns
    -------
    (graph, item_categories):
        The graph and an array giving the category of every item node.
    """
    if n_categories < 2 or items_per_category < 2 or users_per_category < 1:
        raise ConfigurationError(
            "hierarchical_citation_graph needs >= 2 categories, >= 2 items per "
            "category and >= 1 user per category"
        )
    if picks_per_user < 1:
        raise ConfigurationError(f"picks_per_user must be >= 1, got {picks_per_user}")
    if not 0.0 <= noise <= 1.0:
        raise ConfigurationError(f"noise must be in [0, 1], got {noise}")
    rng = _rng(seed)
    n_items = n_categories * items_per_category
    n_users = n_categories * users_per_category
    edges: List[Tuple[int, int]] = []
    for user in range(n_users):
        category = user % n_categories
        user_node = n_items + user
        group_node = n_items + n_users + category
        edges.append((group_node, user_node))
        for _ in range(picks_per_user):
            if rng.random() < noise:
                item = int(rng.integers(0, n_items))
            else:
                item = category * items_per_category + int(
                    rng.integers(0, items_per_category)
                )
            edges.append((user_node, item))
    graph = DiGraph(n_items + n_users + n_categories, edges, name=name)
    item_categories = np.repeat(np.arange(n_categories), items_per_category)
    return graph, item_categories


def star_graph(n_leaves: int, name: str = "star") -> DiGraph:
    """Star graph: every leaf points to the hub (node 0).

    All leaves share the hub as their only in-link target's source — handy in
    unit tests because every pair of leaves has SimRank exactly ``c``.
    """
    if n_leaves < 1:
        raise ConfigurationError(f"n_leaves must be >= 1, got {n_leaves}")
    edges = [(0, leaf) for leaf in range(1, n_leaves + 1)]
    return DiGraph(n_leaves + 1, edges, name=name)


def cycle_graph(n: int, name: str = "cycle") -> DiGraph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return DiGraph(n, edges, name=name)


def complete_bipartite_graph(n_left: int, n_right: int,
                             name: str = "complete-bipartite") -> DiGraph:
    """Complete bipartite digraph: every left node points to every right node.

    Every pair of right nodes has identical in-neighbour sets, so their
    SimRank converges to a known closed form — used by correctness tests.
    """
    if n_left < 1 or n_right < 1:
        raise ConfigurationError("both sides must have at least one node")
    edges = [
        (left, n_left + right) for left in range(n_left) for right in range(n_right)
    ]
    return DiGraph(n_left + n_right, edges, name=name)
