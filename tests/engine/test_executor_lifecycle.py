"""Executor backend pool lifecycle: persistence, close(), reuse.

The backends are long-lived now (a service scatters through the same pool
on every batch), so the lifecycle is part of the contract: pools persist
across ``run`` calls, ``close`` releases them, a closed backend
transparently recreates its pool on the next ``run``, and the
context-manager form closes on exit.
"""

import os
from concurrent.futures import BrokenExecutor
from functools import partial

import pytest

from repro.engine.executor import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.errors import ConfigurationError


def _double(value):
    return value * 2


def _die_hard():
    os._exit(13)  # kills the worker process, breaking the pool


class TestThreadBackendLifecycle:
    def test_pool_persists_across_runs(self):
        backend = ThreadBackend(max_workers=2)
        assert backend._pool is None  # lazily created
        assert backend.run([lambda: 1, lambda: 2]) == [1, 2]
        pool = backend._pool
        assert pool is not None
        assert backend.run([lambda: 3]) == [3]
        assert backend._pool is pool, "pool must be reused, not per-call"
        backend.close()

    def test_close_releases_and_reuse_recreates(self):
        backend = ThreadBackend(max_workers=2)
        backend.run([lambda: 1])
        backend.close()
        assert backend._pool is None
        backend.close()  # idempotent
        assert backend.run([lambda: 4]) == [4], "closed backend must revive"
        backend.close()

    def test_context_manager_closes(self):
        with ThreadBackend(max_workers=2) as backend:
            assert backend.run([lambda: 5]) == [5]
            assert backend._pool is not None
        assert backend._pool is None


class TestProcessBackendLifecycle:
    def test_pool_persists_across_runs_and_cm_closes(self):
        with ProcessBackend(max_workers=2) as backend:
            assert backend.run([partial(_double, 2)]) == [4]
            pool = backend._pool
            assert pool is not None
            assert backend.run([partial(_double, 3), partial(_double, 4)]) \
                == [6, 8]
            assert backend._pool is pool, "workers must not re-fork per run"
        assert backend._pool is None

    def test_unpicklable_task_fails_before_spawning_workers(self):
        backend = ProcessBackend(max_workers=2)
        local = 7
        with pytest.raises(ConfigurationError, match="not picklable"):
            backend.run([lambda: local])
        assert backend._pool is None, (
            "a rejected batch must not leave a worker pool behind"
        )

    def test_broken_pool_is_discarded_and_next_run_recovers(self):
        backend = ProcessBackend(max_workers=1)
        with pytest.raises(BrokenExecutor):
            backend.run([_die_hard])
        assert backend._pool is None, (
            "a broken pool must be discarded, not kept to poison later runs"
        )
        assert backend.run([partial(_double, 4)]) == [8]
        backend.close()

    def test_close_idempotent_and_revives(self):
        backend = ProcessBackend(max_workers=1)
        assert backend.run([partial(_double, 5)]) == [10]
        backend.close()
        assert backend._pool is None
        backend.close()
        assert backend.run([partial(_double, 6)]) == [12]
        backend.close()


class TestSerialBackendLifecycle:
    def test_close_is_noop_and_cm_works(self):
        with SerialBackend() as backend:
            assert backend.run([lambda: 7]) == [7]
        backend.close()
        assert backend.run([lambda: 8]) == [8]
