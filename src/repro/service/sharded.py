"""Scatter-gather SimRank serving over a sharded index.

:class:`ShardedQueryService` is the cluster-shaped sibling of
:class:`~repro.service.service.QueryService`: the node space is split across
``K`` shards by a :class:`~repro.graph.partition.ShardPlan`, and every piece
of per-node serving state follows the plan —

* **index maintenance**: each shard owns its nodes' rows of the indexing
  linear system; index builds and incremental updates fan out per shard
  through an executor backend
  (:class:`~repro.core.sharding.ShardedIncrementalWalker`);
* **walk-distribution caches**: one LRU per shard, so a shard's cache holds
  exactly the sources it owns and an update invalidates only inside the
  touched shards;
* **top-k ranking**: the owner shard scores the source, every shard ranks
  the candidate nodes it owns, and the results are merged *exactly*
  (:func:`repro.core.queries.merge_top_k` — the canonical total order makes
  the merge provably equal to single-shard ranking);
* **versions**: the global :attr:`~ShardedQueryService.index_version` keeps
  the single-shard semantics (one bump per applied update), while
  :attr:`~ShardedQueryService.shard_versions` records, per shard, the last
  global version that re-estimated one of its rows.

Per-shard query work is *scattered in parallel*: cache misses are grouped
by owning shard and simulated as one task per shard, and top-k ranking runs
one task per shard, all through a persistent executor backend the service
owns (``ServiceParams.serve_backend`` / ``ServiceParams.serve_workers``;
the same :func:`repro.core.sharding.run_shard_tasks` primitive the build
path fans out through).  The service is **thread-safe**: concurrent
:meth:`~QueryService.run_batch` calls and live updates (immediate or
deferred) serialise on an internal lock, so every
:class:`~repro.service.service.BatchAnswers` is computed against exactly
the index version it reports — never a torn mixture of two generations —
while the per-shard work inside a batch still runs concurrently on the
pool.  Call :meth:`ShardedQueryService.close` (or use the service as a
context manager) to release the pools.

The headline invariant is inherited from the rest of the stack and pinned by
the test suite: **for any number of shards, any strategy and any backend,
every answer — pair, source and top-k, before and after live updates — is
bitwise-identical to the single-shard service's.**  Sharding changes where
work happens and what can run concurrently, never results.  See
``docs/sharding.md`` for the full routing and merge semantics.

Example
-------
>>> from repro.config import ShardingParams, SimRankParams
>>> from repro.graph import generators
>>> from repro.service import PairQuery, ShardedQueryService, TopKQuery
>>> graph = generators.copying_model_graph(120, out_degree=5, seed=1)
>>> service = ShardedQueryService.build(
...     graph, SimRankParams.fast_defaults(),
...     sharding=ShardingParams(num_shards=4))
>>> answers = service.run_batch([PairQuery(3, 7), TopKQuery(3, k=5)])
>>> 0.0 <= answers[0] <= 1.0
True
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import (
    RebalanceParams,
    ServiceParams,
    ShardingParams,
    SimRankParams,
    UpdateParams,
)
from repro.core import kernels, montecarlo
from repro.core.index import (
    DiagonalIndex,
    ShardedIndex,
    ShardedSnapshotStore,
)
from repro.core.queries import (
    QueryEngine,
    merge_top_k,
    propagate_scores,
    rank_top_k_entries,
)
from repro.core.resident_system import ResidentSystem
from repro.core.sharding import (
    ShardedIncrementalWalker,
    make_plan,
    run_shard_tasks,
)
from repro.engine.cost_model import RebalanceEstimate, evaluate_rebalance
from repro.engine.executor import ResidentHandle, make_backend, resolve_resident
from repro.errors import CloudWalkerError
from repro.graph.digraph import DiGraph
from repro.graph.partition import ShardPlan, load_balanced_plan, shard_loads
from repro.service.batching import (
    BatchPlan,
    Query,
    TopKQuery,
    chunk_sources,
)
from repro.service.cache import CacheKey, WalkDistributionCache
from repro.service.service import Answer, BatchAnswers, QueryService
from repro.service.updates import GraphMutator, MutationResult

PathLike = Union[str, os.PathLike]


def _simulate_shard_sources(
    graph: DiGraph,
    sources: Sequence[int],
    params: SimRankParams,
    walkers: int,
    max_batch_size: int,
) -> Dict[int, montecarlo.WalkDistributions]:
    """One shard's scatter payload: simulate its missing sources, chunked.

    Module-level (picklable) so the ``processes`` serve backend can ship
    it to a worker.  The chunking is exactly the sequential path's
    (:func:`repro.service.batching.chunk_sources` at the service's
    ``max_batch_size``) and every source consumes its own ``(seed,
    source)`` random stream, so running shards concurrently — in any
    order, on any backend — produces bitwise-identical distributions.
    """
    resolved: Dict[int, montecarlo.WalkDistributions] = {}
    for chunk in chunk_sources(list(sources), max_batch_size):
        resolved.update(
            montecarlo.estimate_walk_distributions_batch(
                graph, chunk, params, walkers=walkers
            )
        )
    return resolved


def _simulate_shard_sources_resident(
    handle: ResidentHandle,
    sources: Sequence[int],
    params: SimRankParams,
    walkers: int,
    max_batch_size: int,
) -> Dict[int, montecarlo.WalkDistributions]:
    """:func:`_simulate_shard_sources` against a pool-resident graph.

    The zero-copy serving hot path: the task closes over a
    :class:`~repro.engine.executor.ResidentHandle` and the shard's source
    ids — O(sources) bytes — and the worker materialises the graph once
    per residency epoch (:func:`repro.engine.executor.resolve_resident`),
    so steady-state scatter payloads are independent of graph size.  The
    simulated distributions are bitwise-identical to the ship-the-graph
    path: the restored CSR arrays are byte-for-byte the service's, and
    every source consumes its own ``(seed, source)`` stream.
    """
    return _simulate_shard_sources(
        resolve_resident(handle), sources, params, walkers, max_batch_size
    )


def _rank_shard_resident(
    handle: ResidentHandle, shard: int, values: np.ndarray,
    source: int, k: int,
) -> List[Tuple[int, float]]:
    """One shard's top-k ranking against pool-resident owned-node arrays.

    The per-shard owned-node id arrays are a pure function of the plan and
    the node count — epoch-stable, like the graph — so they ride the
    resident registry and each ranking task ships only the shard's score
    slice (``values = scores[owned]``, O(n / K) floats) plus a handle.
    This is the in-process residency path (serial/thread serve backends:
    the slice is a reference, not a copy); the process backend uses the
    fully payload-free :func:`_rank_shard_payload_free` instead.
    """
    # `values` is this task's own gather (or its unpickled payload on the
    # processes backend), so the ranking may mask it in place.
    owned = resolve_resident(handle)[shard]
    return rank_top_k_entries(owned, values, source, k, copy=False)


#: Per-worker caches behind :func:`_rank_shard_payload_free`, keyed by
#: resident tokens so a residency epoch bump (live update, rebalance flip,
#: broken-pool recovery) naturally invalidates them.  Module-level because
#: ``DiGraph`` uses ``__slots__`` (nothing can be hung off the restored
#: object) and process-pool workers are single-threaded.
_WORKER_TRANSITIONS: "OrderedDict[str, Any]" = OrderedDict()
_WORKER_TRANSITION_CAPACITY = 4
_WORKER_SCORES: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_WORKER_SCORE_CAPACITY = 128


def _worker_transition_t(graph: DiGraph, token: str):
    """``P^T`` (CSR) for a resident graph, cached per residency token."""
    cached = _WORKER_TRANSITIONS.get(token)
    if cached is not None:
        _WORKER_TRANSITIONS.move_to_end(token)
        return cached
    transition_t = graph.transition_matrix().T.tocsr()
    _WORKER_TRANSITIONS[token] = transition_t
    while len(_WORKER_TRANSITIONS) > _WORKER_TRANSITION_CAPACITY:
        _WORKER_TRANSITIONS.popitem(last=False)
    return transition_t


def _rank_shard_payload_free(
    graph_handle: ResidentHandle,
    system_handle: ResidentHandle,
    nodes_handle: ResidentHandle,
    shard: int,
    source: int,
    k: int,
    params: SimRankParams,
    walkers: int,
) -> List[Tuple[int, float]]:
    """One shard's top-k ranking with **no per-task data payload at all**.

    The endgame of the zero-copy story: the task ships three resident
    handles plus five scalars — O(1) bytes, independent of graph *and*
    system size — instead of the shard's ``scores[owned]`` slice (O(n/K)
    floats per task, i.e. the full score vector per batch across shards).
    The worker reconstructs the score vector itself from state that is
    already pool-resident:

    1. the source's walk distributions are **re-simulated** from the
       deterministic ``(seed, source)`` stream
       (:func:`repro.core.montecarlo.estimate_walk_distributions_batch` —
       the exact call the service's scatter uses), so they are
       bitwise-identical to the parent's by construction, and nothing
       needs shipping;
    2. the scores run through the shared
       :func:`repro.core.queries.propagate_scores` against the resident
       graph's transition and the resident system view's diagonal — the
       same code over byte-identical restored arrays as the parent's
       :meth:`~repro.core.queries.QueryEngine.propagate_source`;
    3. the shard ranks the owned slice exactly like every other path.

    Steps 1–2 are cached per ``(graph epoch, system epoch, source,
    walkers, params)`` in a per-worker LRU, so a batch's K ranking tasks
    pay the propagation once per worker that sees the source — redundant
    across workers, but payload (the thing this path eliminates) dominates
    propagation at serving scale, and epoch-keyed tokens make staleness
    impossible: any lineage event re-registers and the key changes.
    """
    graph = resolve_resident(graph_handle)
    system: ResidentSystem = resolve_resident(system_handle)
    owned = resolve_resident(nodes_handle)[shard]
    score_key = (graph_handle.token, system_handle.token, source, walkers,
                 params)
    scores = _WORKER_SCORES.get(score_key)
    if scores is None:
        transition_t = _worker_transition_t(graph, graph_handle.token)
        distributions = montecarlo.estimate_walk_distributions_batch(
            graph, [source], params, walkers=walkers
        )[source]
        scores = propagate_scores(
            source, distributions, transition_t, system.diagonal,
            params.c, params.walk_steps,
        )
        _WORKER_SCORES[score_key] = scores
        while len(_WORKER_SCORES) > _WORKER_SCORE_CAPACITY:
            _WORKER_SCORES.popitem(last=False)
    else:
        _WORKER_SCORES.move_to_end(score_key)
    # scores[owned] is a fresh fancy-index gather, so in-place masking
    # (copy=False) can never scribble on the cached vector.
    return rank_top_k_entries(owned, scores[owned], source, k, copy=False)


class ShardedQueryService(QueryService):
    """A :class:`QueryService` that routes per-node state across ``K`` shards.

    Accepts every query and update the single-shard service does, with the
    same answers (bitwise) and the same ``index_version`` sequence; the
    additional surface is per-shard observability (:meth:`stats`,
    :attr:`shard_versions`) and sharded persistence
    (:meth:`save_snapshot` / :meth:`from_snapshot` write and read one
    :class:`~repro.core.index.SnapshotStore` per shard).

    Parameters
    ----------
    graph:
        The graph queries run against.
    index:
        A built or loaded index: either a plain :class:`DiagonalIndex`
        (the diagonal is broadcast, shard state starts fresh) or a
        :class:`~repro.core.index.ShardedIndex` restored from a sharded
        snapshot (its plan and shard versions are adopted).
    params:
        Algorithmic parameters; defaults to the index's build parameters.
    service_params:
        Cache and batching knobs.  ``cache_capacity`` is **per shard**: a
        ``K``-shard service can hold up to ``K * cache_capacity``
        distributions, mirroring a real deployment where every shard has
        its own memory budget.  ``serve_backend`` / ``serve_workers``
        select the persistent executor pool the query-time scatter runs
        through (release it with :meth:`close`).
    update_params:
        Live-update knobs, identical to the single-shard service.
    sharding:
        Shard count / strategy / build backend.  Ignored when ``plan`` (or
        a :class:`ShardedIndex`) already fixes the assignment, except for
        the backend settings.
    plan:
        An explicit node-to-shard assignment, overriding ``sharding``'s
        strategy.
    rebalance_params:
        Knobs of workload-adaptive rebalancing (improvement threshold,
        representativeness minimum, cold weight); see :meth:`rebalance`.

    Attributes
    ----------
    last_scatter_seconds:
        Wall-clock of each shard's most recent cache-miss simulation task,
        keyed by shard id — the serving-side mirror of
        :attr:`~repro.core.sharding.ShardedIncrementalWalker.
        shard_build_seconds`.  Reset on every batch; empty when the batch
        was fully served from the caches.  The parallel-serve benchmark
        accounts a ``W``-worker deployment's critical path from these.
    last_rank_seconds:
        Wall-clock of each shard's top-k ranking tasks in the most recent
        batch, accumulated per shard across the batch's top-k queries.
        Reset on every batch alongside ``last_scatter_seconds`` — the two
        together cover every per-shard task the batch scattered, which is
        the accounting identity the rebalance planner's cumulative
        counters are built on (a fully cached batch scatters no
        simulation, so ``last_scatter_seconds`` stays empty while ranking
        time still lands here).
    """

    last_scatter_seconds: Dict[int, float]
    last_rank_seconds: Dict[int, float]

    def __init__(
        self,
        graph: DiGraph,
        index: Union[DiagonalIndex, ShardedIndex],
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
        sharding: Optional[ShardingParams] = None,
        plan: Optional[ShardPlan] = None,
        rebalance_params: Optional[RebalanceParams] = None,
    ) -> None:
        if isinstance(index, ShardedIndex):
            plan = index.plan if plan is None else plan
            shard_versions: Optional[List[int]] = list(index.shard_versions)
            index = index.index
        else:
            shard_versions = None
        self.sharding = sharding or ShardingParams()
        if plan is None:
            plan = make_plan(graph, self.sharding)
        elif plan.num_shards != self.sharding.num_shards and sharding is not None:
            raise CloudWalkerError(
                f"plan has {plan.num_shards} shards but sharding params say "
                f"{self.sharding.num_shards}"
            )
        self.plan = plan
        self.rebalance_params = rebalance_params or RebalanceParams()
        super().__init__(graph, index, params=params,
                         service_params=service_params,
                         update_params=update_params)
        # The single LRU of the parent is replaced by one cache per shard;
        # `self.cache` stays None so any accidental single-cache use fails
        # loudly instead of silently bypassing the routing layer.
        self.cache = None
        self._fresh_shard_state()
        self.sharded_index = ShardedIndex(
            index=self.index, plan=self.plan,
            shard_versions=shard_versions or [self._version] * self.plan.num_shards,
        )
        # Per-node observed query load (routed sources), the planner's
        # input.  Node-keyed, so it survives plan migrations unchanged.
        self._node_loads: Dict[int, float] = {}
        self._plan_generation = 1
        self._counters["rebalances_applied"] = 0
        # Two reentrant locks with a strict acquisition order —
        # ``_update_lock`` before ``_lock``, never the reverse:
        #
        # * ``_update_lock`` (outer) owns the mutator: the pending queue
        #   and the expensive incremental re-index.  Drains hold ONLY this
        #   lock while re-indexing, so readers keep serving the previous
        #   consistent graph/index/engine objects in the meantime.
        # * ``_lock`` (inner) owns the served state: batches, the
        #   swap-in of an applied update (:meth:`_adopt_mutation`),
        #   snapshots and stats.  Concurrent callers can never observe a
        #   half-applied update; the per-shard work *inside* a batch
        #   still fans out through the serve pool below.
        self._update_lock = threading.RLock()
        self._lock = threading.RLock()
        self._serve_backend = make_backend(
            self.service_params.serve_backend,
            max_workers=self.service_params.serve_workers,
        )
        self.last_scatter_seconds: Dict[int, float] = {}
        self.last_rank_seconds: Dict[int, float] = {}
        # Per-batch scatter-payload accounting (satellite of the zero-copy
        # story): the backend's cumulative pickled-task counter is sampled
        # around each batch, so every run the batch scatters — simulation
        # AND ranking — is counted, not just the last one.
        self.last_batch_payload_bytes = 0
        self._counters["scatter_payload_bytes"] = 0
        self._batch_walkers: Optional[int] = None

    def _fresh_shard_state(self) -> None:
        """(Re)create the per-shard serving state for the current plan.

        Called at construction and at the atomic flip of a plan migration:
        per-shard caches start empty (ownership moved, and the plan-keyed
        cache routing must never serve a source from a shard that no
        longer owns it), per-shard counters restart (they describe load
        *under this plan*), and the owned-node cache is dropped — the next
        batch builds a new owned-nodes list, which is a new object and
        therefore a new epoch in the serve backend's resident registry.
        The resident system view is dropped for the same reason: a plan
        flip changes nothing about the diagonal, but the registry is
        identity-keyed, so a fresh view object is what bumps the system's
        residency epoch in lockstep with the owned-nodes epoch.
        """
        self.shard_caches: List[WalkDistributionCache] = [
            WalkDistributionCache(self.service_params.cache_capacity)
            for _ in range(self.plan.num_shards)
        ]
        self._shard_counters: List[Dict[str, Any]] = [
            {"edges_routed": 0, "sources_simulated": 0, "sources_routed": 0,
             "scatter_seconds": 0.0, "rank_seconds": 0.0}
            for _ in range(self.plan.num_shards)
        ]
        self._shard_nodes_cache: Optional[List[np.ndarray]] = None
        self._shard_nodes_n = -1
        self._system_view: Optional[ResidentSystem] = None

    # ------------------------------------------------------------------ #
    # Cold start
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
        sharding: Optional[ShardingParams] = None,
        rebalance_params: Optional[RebalanceParams] = None,
    ) -> "ShardedQueryService":
        """Build the index shard-by-shard (concurrently) and serve it.

        The per-shard row estimations run through the executor backend of
        ``sharding`` and are gathered into one solve, so the served index
        is bitwise-identical to :meth:`QueryService.build` with the same
        parameters.  Like the single-shard ``build``, the service keeps the
        linear system in memory, so the first :meth:`add_edges` pays only
        for its affected rows.
        """
        params = params or SimRankParams.paper_defaults()
        sharding = sharding or ShardingParams()
        update_params = update_params or UpdateParams()
        plan = make_plan(graph, sharding)
        walker = ShardedIncrementalWalker(
            graph, plan, params=params, exact=update_params.exact,
            backend=make_backend(sharding.backend,
                                 max_workers=sharding.max_workers),
            resident=sharding.resident_graph,
            reachability=update_params.reachability,
        )
        mutator = GraphMutator(graph, params, update_params, walker=walker)
        index = mutator.build()
        service = cls(graph, index, params=params,
                      service_params=service_params,
                      update_params=update_params, sharding=sharding, plan=plan,
                      rebalance_params=rebalance_params)
        service._mutator = mutator
        return service

    @classmethod
    def from_index_file(
        cls,
        graph: DiGraph,
        path: PathLike,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
        sharding: Optional[ShardingParams] = None,
        plan: Optional[ShardPlan] = None,
        rebalance_params: Optional[RebalanceParams] = None,
    ) -> "ShardedQueryService":
        """Cold-start a sharded service from a persisted plain index.

        The index file carries no shard state: the plan is derived from
        ``sharding`` (or taken verbatim from ``plan``, e.g. one recovered
        from an existing snapshot lineage), caches start cold, and the
        first update triggers the (sharded, concurrent) one-time system
        estimation — exactly the plain-index trade-off of
        :meth:`QueryService.from_index_file`.
        """
        index = DiagonalIndex.load(path)
        return cls(graph, index, params=params, service_params=service_params,
                   update_params=update_params, sharding=sharding, plan=plan,
                   rebalance_params=rebalance_params)

    @classmethod
    def from_snapshot(
        cls,
        graph: DiGraph,
        directory: PathLike,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
        sharding: Optional[ShardingParams] = None,
        rebalance_params: Optional[RebalanceParams] = None,
    ) -> "ShardedQueryService":
        """Cold-start from the newest *consistent* sharded snapshot.

        Restores the plan governing that snapshot (a lineage that
        rebalanced serves under its newest adopted plan), the broadcast
        diagonal and — when every shard saved its system block — the
        gathered linear system, so the restarted service resumes
        incremental updates without re-estimating anything.  ``sharding``
        supplies only the executor backend; the shard count and assignment
        always come from the snapshot's persisted plan.
        """
        update_params = update_params or UpdateParams()
        sharding = sharding or ShardingParams()
        store = ShardedSnapshotStore(directory, retain=update_params.snapshot_retain)
        version, sharded_index, system = store.load()
        service = cls(graph, sharded_index, params=params,
                      service_params=service_params, update_params=update_params,
                      sharding=sharding.with_(
                          num_shards=sharded_index.plan.num_shards,
                          strategy=sharded_index.plan.strategy,
                      ),
                      rebalance_params=rebalance_params)
        service._version = version
        service.sharded_index.shard_versions = [version] * service.num_shards
        if system is not None:
            walker = ShardedIncrementalWalker(
                graph, service.plan, params=service.params,
                exact=update_params.exact,
                backend=make_backend(service.sharding.backend,
                                     max_workers=service.sharding.max_workers),
                resident=service.sharding.resident_graph,
                reachability=update_params.reachability,
            )
            walker.attach(service.index, system=system)
            service._mutator = GraphMutator(graph, service.params, update_params,
                                            walker=walker)
        return service

    # ------------------------------------------------------------------ #
    # Shard topology
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards (``K``) the service routes across."""
        return self.plan.num_shards

    @property
    def shard_versions(self) -> List[int]:
        """Per-shard generations: the global :attr:`index_version` at which
        each shard's index rows were last (re-)estimated.  A shard whose
        version trails the global one simply had no affected rows in the
        updates since — its rows (and cached distributions) are still
        bitwise-current."""
        return list(self.sharded_index.shard_versions)

    def shard_of(self, node: int) -> int:
        """The shard owning ``node`` — its cache, index rows and ranking."""
        return self.plan.shard_of(node)

    def _shard_nodes(self) -> List[np.ndarray]:
        """Per-shard owned-node arrays for the current graph (cached)."""
        if self._shard_nodes_cache is None or self._shard_nodes_n != self.graph.n_nodes:
            assignment = self.plan.assign(self.graph.n_nodes)
            self._shard_nodes_cache = [
                np.flatnonzero(assignment == shard)
                for shard in range(self.num_shards)
            ]
            self._shard_nodes_n = self.graph.n_nodes
        return self._shard_nodes_cache

    def _resident_system_view(self) -> ResidentSystem:
        """The served system state as a residency view (cached by lineage).

        Carries the solved diagonal — the only system-derived array the
        payload-free ranking workers need.  The view object's identity
        keys the serve backend's resident registry, so it is rebuilt
        exactly on the epoch-bumping events: an adopted update swaps in a
        new index (``view.diagonal is not self.index.diagonal``), and a
        rebalance flip / snapshot restore goes through
        :meth:`_fresh_shard_state`, which drops the cached view outright.
        """
        view = self._system_view
        if view is None or view.diagonal is not self.index.diagonal:
            view = ResidentSystem(diagonal=self.index.diagonal)
            self._system_view = view
        return view

    # ------------------------------------------------------------------ #
    # Lifecycle and concurrency
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the service's persistent executor pools.

        Releases the query-time serve pool and, when a mutator exists, the
        build backend its :class:`~repro.core.sharding.
        ShardedIncrementalWalker` fans re-estimation out through —
        including every **resident shared-memory segment** either backend
        registered, which must be unlinked even when a pool died mid-batch
        (closing a broken ``ProcessBackend`` never raises; resident
        release is a parent-side unlink).  The two backends are closed in
        a ``try/finally`` chain so a failure releasing one can never leak
        the other's segments.  Safe to call repeatedly, and the service
        stays usable afterwards — pooled backends recreate their workers,
        and residency re-registers, on the next scatter — so ``close`` is
        about releasing threads/processes/memory, not about ending the
        service's life.  The CLI serve loop, the benchmarks and the tests
        call it via ``with service: ...``.
        """
        with self._update_lock, self._lock:
            try:
                self._serve_backend.close()
            finally:
                if self._mutator is not None:
                    backend = getattr(self._mutator.walker, "backend", None)
                    if backend is not None:
                        backend.close()

    def run_batch(self, queries: Sequence[Query],
                  walkers: Optional[int] = None,
                  flush_pending: bool = True) -> BatchAnswers:
        """Answer a batch (single-shard semantics), thread-safely.

        Identical to :meth:`QueryService.run_batch` except for the locking
        discipline: the deferred-update queue is drained first — but only
        if no other thread is already draining it (a non-blocking
        acquisition of the update lock), so a batch never stalls behind an
        in-flight re-index; it simply serves the previous consistent
        version, which the in-flight drain will swap out atomically when
        done.  The batch itself — cache resolution, scatter, answers —
        then executes under the serve lock: concurrent batches and update
        swap-ins serialise, so the returned
        :class:`~repro.service.service.BatchAnswers` is always
        self-consistent with the :attr:`~QueryService.index_version` it
        carries.  Within the batch, per-shard simulation and ranking run
        concurrently on the serve pool.
        """
        if flush_pending and self._update_lock.acquire(blocking=False):
            try:
                super().flush_updates()
            finally:
                self._update_lock.release()
        with self._lock:
            # Sample the backend's cumulative pickled-task counter around
            # the whole batch: a batch scatters several runs (one
            # simulation fan-out plus one ranking fan-out per top-k
            # query), and ``last_payload_bytes`` alone only ever shows the
            # final run — which used to hide the ranking-scatter payloads
            # from the zero-copy accounting entirely.
            before = getattr(self._serve_backend, "total_payload_bytes", None)
            answers = super().run_batch(queries, walkers=walkers,
                                        flush_pending=False)
            if before is not None:
                delta = self._serve_backend.total_payload_bytes - before
                self.last_batch_payload_bytes = delta
                self._counters["scatter_payload_bytes"] += delta
            return answers

    def flush_updates(self) -> Optional[MutationResult]:
        """Drain queued edge insertions as one re-index, thread-safely.

        Delegates to :meth:`flush_updates_overlapped`: the re-index runs
        under the update lock only, so concurrent batches keep serving the
        previous consistent version instead of queueing behind the drain.
        """
        return self.flush_updates_overlapped()

    def flush_updates_overlapped(self) -> Optional[MutationResult]:
        """Drain queued updates with the re-index OFF the serve lock.

        The overlapped-drain primitive the HTTP tier's drain strand calls:
        the expensive incremental re-index holds only the update lock
        (serialising with other updates), while in-flight and new query
        batches proceed under the serve lock against the previous
        graph/index/engine objects — which stay internally consistent
        because the mutator builds *new* objects and
        :meth:`_adopt_mutation` re-points the service at them atomically
        under the serve lock at the very end.  Returns the applied
        :class:`~repro.service.updates.MutationResult`, or None when the
        queue was empty (or contained only already-present edges).
        """
        with self._update_lock:
            return super().flush_updates()

    # ------------------------------------------------------------------ #
    # Live updates (shard-routed)
    # ------------------------------------------------------------------ #
    def _ensure_mutator(self) -> GraphMutator:
        if self._mutator is None:
            walker = ShardedIncrementalWalker(
                self.graph, self.plan, params=self.params,
                exact=self.update_params.exact,
                backend=make_backend(self.sharding.backend,
                                     max_workers=self.sharding.max_workers),
                resident=self.sharding.resident_graph,
                reachability=self.update_params.reachability,
            )
            # Attaching estimates the linear system once — shard-by-shard,
            # concurrently — exactly like the single-shard attach but with
            # the build fanned out.
            walker.attach(self.index)
            self._mutator = GraphMutator(self.graph, self.params,
                                         self.update_params, walker=walker)
        return self._mutator

    def add_edges(self, edges: Sequence[Tuple[int, int]],
                  defer: bool = False) -> Optional[MutationResult]:
        """Insert edges into the served graph (single-shard semantics).

        Each edge is routed to the shard owning its *head* (the node whose
        in-links change); the per-shard routed counts appear in
        :meth:`stats`.  Application, deferral and the bounded queue behave
        exactly like :meth:`QueryService.add_edges`; the re-index itself
        touches only the shards owning affected rows (their re-estimation
        tasks fan out through the walker's executor backend), and the
        re-index holds only the update lock — in-flight query batches keep
        serving the previous consistent version until the swap-in.
        """
        with self._update_lock:
            with self._lock:
                for shard, routed in self.plan.group_edges(
                        (int(u), int(v)) for u, v in edges).items():
                    self._shard_counters[shard]["edges_routed"] += len(routed)
            return super().add_edges(edges, defer=defer)

    def _adopt_mutation(self, result: MutationResult) -> None:
        """Swap in the post-update state; invalidate per-shard, atomically.

        The sharded counterpart of :meth:`QueryService._adopt_mutation`:
        runs under the serve lock (the expensive re-index already happened,
        possibly detached from it), re-points the service at the mutator's
        new graph/index/engine, invalidates exactly the affected sources in
        their owning shards' caches, and bumps the global and touched-shard
        versions together — so a concurrent batch sees either the complete
        old state or the complete new one, never a mixture.
        """
        with self._lock:
            self.graph = self._mutator.graph
            self.index = self._mutator.index
            self.engine = QueryEngine(self.graph, self.index, self.params)
            self._rebuild_query_engine()
            self._shard_nodes_cache = None
            self._version += 1
            touched = self.plan.group_nodes(result.affected)
            for shard, nodes in touched.items():
                self.shard_caches[shard].invalidate_sources(nodes)
            self.sharded_index.index = self.index
            self.sharded_index.touch(sorted(touched), self._version)
            self._counters["updates_applied"] += 1
            self._counters["edges_added"] += result.edges_added
            self._maybe_auto_snapshot()

    def save_snapshot(self, directory: Optional[PathLike] = None) -> Tuple[int, str]:
        """Persist one consistent sharded snapshot at the current version.

        Every shard's :class:`~repro.core.index.SnapshotStore` receives the
        broadcast diagonal plus its own rows of the linear system (when the
        service maintains one).  Returns ``(version, directory)``.  Saving
        the same version twice is a no-op; a directory ahead of this
        service, or created with a different plan, is rejected.  Takes the
        update lock before the serve lock, so a snapshot can never read the
        linear system mid-way through a detached re-index.
        """
        with self._update_lock, self._lock:
            directory = directory if directory is not None \
                else self.update_params.snapshot_dir
            if directory is None:
                raise CloudWalkerError(
                    "no snapshot directory: pass one or set UpdateParams.snapshot_dir"
                )
            store = ShardedSnapshotStore(directory,
                                         retain=self.update_params.snapshot_retain)
            latest = store.latest_version()
            if latest is not None and latest > self._version:
                raise CloudWalkerError(
                    f"snapshot directory {directory} is at version {latest}, ahead "
                    f"of this service (version {self._version})"
                )
            if latest != self._version:
                shard_systems = None
                if self._mutator is not None and isinstance(
                        self._mutator.walker, ShardedIncrementalWalker):
                    if self._mutator.system is not None:
                        shard_systems = self._mutator.walker.shard_systems()
                store.save_snapshot(self.sharded_index, shard_systems=shard_systems,
                                    version=self._version)
                self._counters["snapshots_written"] += 1
            return self._version, str(store.directory)

    # ------------------------------------------------------------------ #
    # Workload-adaptive rebalancing
    # ------------------------------------------------------------------ #
    def _load_weights(self, node_loads: Optional[Union[Dict[int, float],
                                                       Sequence[float]]] = None
                      ) -> np.ndarray:
        """Per-node planner weights: cold weight plus observed query load.

        Every node carries ``RebalanceParams.cold_weight`` (a never-queried
        node still costs its shard index rows and ranking work), plus the
        observed routed-source counts — the service's own ``_node_loads``
        by default, or a caller-supplied dict/array (e.g. structural
        weights for an offline re-plan).  Must be called under ``_lock``
        when reading the live counters.
        """
        n = self.graph.n_nodes
        weights = np.full(n, self.rebalance_params.cold_weight, dtype=np.float64)
        observed = self._node_loads if node_loads is None else node_loads
        if isinstance(observed, dict):
            for node, load in observed.items():
                if 0 <= int(node) < n:
                    weights[int(node)] += float(load)
        else:
            arr = np.asarray(observed, dtype=np.float64)
            if arr.shape != (n,):
                raise CloudWalkerError(
                    f"node_loads must have one entry per node ({n}), "
                    f"got shape {arr.shape}"
                )
            weights += arr
        return weights

    def plan_rebalance(
        self,
        node_loads: Optional[Union[Dict[int, float], Sequence[float]]] = None,
    ) -> Tuple[ShardPlan, RebalanceEstimate]:
        """Propose a plan for the observed load, without migrating.

        Greedy LPT over the per-node weights
        (:func:`repro.graph.partition.load_balanced_plan`), evaluated
        against the serving plan with the critical-path cost model
        (:func:`repro.engine.cost_model.evaluate_rebalance`).  Read-only:
        returns ``(proposal, estimate)`` and changes nothing, so it is
        safe to call from monitoring paths at any time.
        """
        with self._lock:
            n = self.graph.n_nodes
            weights = self._load_weights(node_loads)
            current_plan = self.plan
        proposal = load_balanced_plan(self.num_shards, weights)
        estimate = evaluate_rebalance(
            shard_loads(current_plan, n, weights),
            shard_loads(proposal, n, weights),
            improvement_threshold=self.rebalance_params.improvement_threshold,
            min_total_load=(self.rebalance_params.min_sources
                            + n * self.rebalance_params.cold_weight),
        )
        return proposal, estimate

    def rebalance(
        self,
        plan: Optional[ShardPlan] = None,
        node_loads: Optional[Union[Dict[int, float], Sequence[float]]] = None,
        force: bool = False,
    ) -> Dict[str, Any]:
        """Migrate to a better-balanced plan, live, without wrong answers.

        The migration protocol, in order:

        1. **Drain** the deferred-update queue (the whole migration holds
           the update lock, so no new edges can slip into the mutator that
           is about to be replaced — ``add_edges`` blocks until the flip).
        2. **Plan**: propose via :meth:`plan_rebalance` (or adopt the
           caller's ``plan``, which must keep the shard count) and
           evaluate it.  Unless ``force``, a proposal that does not clear
           ``RebalanceParams.improvement_threshold`` — or equals the
           serving plan — returns ``{"applied": False, ...}`` untouched.
        3. **Build**: re-slice the maintained linear system into the
           proposal's shard blocks through the walker's executor backend
           (:meth:`~repro.core.sharding.ShardedIncrementalWalker.
           with_plan`).  Queries keep serving the old plan throughout —
           only the update lock is held.  Any failure here propagates and
           leaves the service byte-for-byte on the old plan: nothing
           served has been touched yet.
        4. **Flip**, atomically under the serve lock: adopt the plan,
           reset the per-shard caches/counters/owned-node arrays
           (:meth:`_fresh_shard_state` — a new owned-nodes object means a
           new residency epoch, so pool workers can never rank against
           stale ownership), bump the version, and install the new
           walker's mutator.  A concurrent batch sees either the complete
           old topology or the complete new one.
        5. **Persist**: when a snapshot directory is configured, save the
           post-flip version — the governing plan is written *before* the
           shard payloads, so a crash mid-save leaves an inconsistent
           version that :class:`~repro.core.index.ShardedSnapshotStore`
           rolls back on the next load.

        Answers are bitwise-identical across the flip: shard blocks are
        row-slices of one plan-independent linear system, per-source
        random streams are keyed ``(seed, source)``, and the top-k merge
        is exact — the plan only decides *where* work runs.  Returns a
        report dict (``applied``, ``estimate``, ``plan_generation``, …).
        """
        with self._update_lock:
            self.flush_updates_overlapped()
            with self._lock:
                n = self.graph.n_nodes
                weights = self._load_weights(node_loads)
                current_plan = self.plan
            proposal = plan if plan is not None \
                else load_balanced_plan(self.num_shards, weights)
            if proposal.num_shards != current_plan.num_shards:
                raise CloudWalkerError(
                    f"rebalance cannot change the shard count: serving "
                    f"{current_plan.num_shards} shards, proposal has "
                    f"{proposal.num_shards}"
                )
            estimate = evaluate_rebalance(
                shard_loads(current_plan, n, weights),
                shard_loads(proposal, n, weights),
                improvement_threshold=self.rebalance_params.improvement_threshold,
                min_total_load=(self.rebalance_params.min_sources
                                + n * self.rebalance_params.cold_weight),
            )
            report: Dict[str, Any] = {
                "applied": False,
                "estimate": estimate.to_dict(),
                "plan_generation": self._plan_generation,
                "index_version": self._version,
            }
            if np.array_equal(proposal.assign(n), current_plan.assign(n)):
                report["reason"] = "proposed plan equals the serving plan"
                return report
            if not force and not estimate.should_rebalance:
                report["reason"] = estimate.reason
                return report
            # Build the new sharded lineage from the current system —
            # the expensive, failure-prone step, done entirely before
            # anything served changes.
            mutator = self._ensure_mutator()
            new_walker = mutator.walker.with_plan(proposal)
            blocks = new_walker.shard_systems(backend=new_walker.backend)
            with self._lock:
                self.plan = proposal
                self._fresh_shard_state()
                self._version += 1
                self._plan_generation += 1
                self.sharded_index = ShardedIndex(
                    index=self.index, plan=proposal,
                    shard_versions=[self._version] * proposal.num_shards,
                )
                self._mutator = GraphMutator(self.graph, self.params,
                                             self.update_params,
                                             walker=new_walker)
                self._counters["rebalances_applied"] += 1
                report.update(
                    applied=True,
                    reason=("forced" if force and not estimate.should_rebalance
                            else estimate.reason),
                    plan_generation=self._plan_generation,
                    index_version=self._version,
                )
            if self.update_params.snapshot_dir is not None:
                store = ShardedSnapshotStore(
                    self.update_params.snapshot_dir,
                    retain=self.update_params.snapshot_retain,
                )
                store.save_snapshot(self.sharded_index, shard_systems=blocks,
                                    version=self._version)
                self._counters["snapshots_written"] += 1
                report["snapshot_version"] = self._version
            return report

    def maybe_rebalance(self) -> Dict[str, Any]:
        """One auto-rebalance tick: migrate only if the model says so.

        The periodic entry point of the HTTP tier's ``--auto-rebalance``
        strand — exactly :meth:`rebalance` with ``force=False``, so an
        unrepresentative or not-good-enough proposal is a cheap no-op.
        """
        return self.rebalance(force=False)

    # ------------------------------------------------------------------ #
    # Query execution (scatter-gather)
    # ------------------------------------------------------------------ #
    def _resolve_distributions(
        self, plan: BatchPlan, walkers: Optional[int]
    ) -> Dict[int, montecarlo.WalkDistributions]:
        """Resolve a batch's sources against their owning shards' caches.

        Every source is looked up in — and simulated into — the cache of
        the shard that owns it; misses are grouped per shard and scattered
        as **one task per shard** through the persistent serve backend
        (:func:`repro.core.sharding.run_shard_tasks`), each task chunking
        its sources exactly like the single-shard path.  Because each
        source's simulation consumes its own ``(seed, source)`` stream,
        neither the grouping nor the concurrent execution can change any
        distribution — only which cache holds it and how long the scatter
        takes.  Per-shard task wall-clocks land in
        ``last_scatter_seconds`` (the parallel-serve benchmark's
        critical-path input); cache inserts and counters are applied in
        the gathering thread, under the batch's lock.
        """
        walkers_count = (walkers if walkers is not None
                         else self.query_params.query_walkers)
        # Stash for _answer's payload-free ranking tasks, which re-simulate
        # the source at exactly this batch's Monte-Carlo budget.  Batches
        # serialise under the serve lock, so the stash cannot be torn.
        self._batch_walkers = walkers_count
        resolved: Dict[int, montecarlo.WalkDistributions] = {}
        missing_by_shard: Dict[int, List[int]] = {}
        for source in plan.sources:
            shard = self.plan.shard_of(source)
            # Load accounting feeds the rebalance planner: every routed
            # source counts against its node and its owning shard, cached
            # or not — placement decides which shard *would* pay for the
            # source once its cache entry ages out.
            self._node_loads[source] = self._node_loads.get(source, 0.0) + 1.0
            self._shard_counters[shard]["sources_routed"] += 1
            cached = self.shard_caches[shard].get(
                CacheKey.for_query(source, self.query_params, walkers_count)
            )
            if cached is not None:
                resolved[source] = cached
            else:
                missing_by_shard.setdefault(shard, []).append(source)
        self.last_scatter_seconds = {}
        self.last_rank_seconds = {}
        if missing_by_shard:
            if self.service_params.resident_graph:
                # Zero-copy hot path: the graph rides the pool's resident
                # registry (re-registered automatically when an update
                # swaps it — `self.graph` is then a new object, i.e. a new
                # epoch), so each task ships a handle plus its source ids.
                handle = self._serve_backend.ensure_resident("graph", self.graph)
                tasks = {
                    shard: partial(
                        _simulate_shard_sources_resident, handle, sources,
                        self.query_params, walkers_count,
                        self.service_params.max_batch_size,
                    )
                    for shard, sources in missing_by_shard.items()
                }
            else:
                tasks = {
                    shard: partial(
                        _simulate_shard_sources, self.graph, sources,
                        self.query_params, walkers_count,
                        self.service_params.max_batch_size,
                    )
                    for shard, sources in missing_by_shard.items()
                }
            outcomes = run_shard_tasks(self._serve_backend, tasks)
            for shard in sorted(outcomes):
                simulated, seconds = outcomes[shard]
                self.last_scatter_seconds[shard] = seconds
                self._shard_counters[shard]["scatter_seconds"] += seconds
                self._counters["sources_simulated"] += len(simulated)
                self._shard_counters[shard]["sources_simulated"] += len(simulated)
                for source, distribution in simulated.items():
                    resolved[source] = distribution
                    self.shard_caches[shard].put(
                        CacheKey.for_query(source, self.query_params, walkers_count),
                        distribution,
                    )
        return resolved

    def _answer(self, query: Query,
                distributions: Dict[int, montecarlo.WalkDistributions]) -> Answer:
        """Answer one query; top-k is scattered across shards and merged.

        The source's owner shard produces the score vector, each shard
        ranks the candidate nodes it owns — one
        :func:`repro.core.queries.rank_top_k_within` task per shard on the
        serve backend — and the partial rankings are merged exactly
        (:func:`repro.core.queries.merge_top_k`).  The ranking order is a
        total order of the entries themselves, so concurrent per-shard
        ranking cannot change the merged list.  Pair and source queries
        are answered by the owner shard alone and delegate to the parent.
        """
        if isinstance(query, TopKQuery):
            self._counters["topk_queries"] += 1
            owned_nodes = self._shard_nodes()
            capped_k = min(query.k, self.graph.n_nodes)
            # With residency on, the owned-node id arrays (epoch-stable,
            # like the graph) ride the resident registry.  How much else
            # ships depends on the backend kind the registry reports:
            #
            # * ``"shm"`` (process pool): the graph and the system view
            #   (diagonal) are resident too, so each ranking task ships
            #   three handles plus scalars — no score slice, no propagate
            #   here in the parent; the worker rebuilds the scores from
            #   resident state (see :func:`_rank_shard_payload_free`).
            # * ``"local"`` (serial/threads): tasks run in this process,
            #   so the parent propagates once and each task closes over a
            #   score-slice *reference* — zero serialisation already, and
            #   one propagation beats K redundant ones.
            shm_resident = False
            if self.service_params.resident_graph:
                nodes_handle = self._serve_backend.ensure_resident(
                    "shard_nodes", owned_nodes)
                shm_resident = nodes_handle.kind == "shm"
            if shm_resident:
                graph_handle = self._serve_backend.ensure_resident(
                    "graph", self.graph)
                system_handle = self._serve_backend.ensure_resident(
                    "system", self._resident_system_view())
                walkers_count = (self._batch_walkers
                                 if self._batch_walkers is not None
                                 else self.query_params.query_walkers)
                tasks = {
                    shard: partial(_rank_shard_payload_free, graph_handle,
                                   system_handle, nodes_handle, shard,
                                   query.source, capped_k,
                                   self.query_params, walkers_count)
                    for shard in range(self.num_shards)
                }
            else:
                # Each task ships (or references) only its shard's gathered
                # scores — O(n / K) per task instead of the full O(n)
                # score vector K times over.
                scores = self.query_engine.propagate_source(
                    query.source, distributions[query.source]
                )
                if self.service_params.resident_graph:
                    tasks = {
                        shard: partial(_rank_shard_resident, nodes_handle,
                                       shard, scores[owned_nodes[shard]],
                                       query.source, capped_k)
                        for shard in range(self.num_shards)
                    }
                else:
                    tasks = {
                        shard: partial(rank_top_k_entries, owned_nodes[shard],
                                       scores[owned_nodes[shard]],
                                       query.source, capped_k, copy=False)
                        for shard in range(self.num_shards)
                    }
            outcomes = run_shard_tasks(self._serve_backend, tasks)
            for shard in range(self.num_shards):
                seconds = outcomes[shard][1]
                self.last_rank_seconds[shard] = (
                    self.last_rank_seconds.get(shard, 0.0) + seconds
                )
                self._shard_counters[shard]["rank_seconds"] += seconds
            partials = [outcomes[shard][0] for shard in range(self.num_shards)]
            return merge_top_k(partials, capped_k)
        return super()._answer(query, distributions)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Aggregate serving counters plus a per-shard breakdown.

        The aggregate mirrors :meth:`QueryService.stats` (cache figures
        summed across shards); the ``"shards"`` entry lists, per shard:
        owned nodes, cache size/hit rate/memory, simulated sources, routed
        edges and the shard's version.  ``serve_backend`` /
        ``serve_workers`` describe the query-time scatter pool.  The whole
        snapshot is taken under the service lock, so its figures are
        mutually consistent even while batches and updates run
        concurrently.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, Any]:
        hits = sum(cache.stats.hits for cache in self.shard_caches)
        lookups = sum(cache.stats.lookups for cache in self.shard_caches)
        shard_rows = []
        owned_nodes = self._shard_nodes()
        for shard, cache in enumerate(self.shard_caches):
            shard_rows.append({
                "shard": shard,
                "nodes": int(len(owned_nodes[shard])),
                "version": self.sharded_index.shard_versions[shard],
                "cache_size": len(cache),
                "cache_hit_rate": cache.stats.hit_rate,
                "cache_invalidations": cache.stats.invalidations,
                "cache_memory_bytes": cache.memory_bytes(),
                **self._shard_counters[shard],
            })
        return {
            **self._counters,
            "index_version": self._version,
            "pending_updates": self.pending_updates,
            "approx_mode": self.query_params is not self.params,
            "accuracy_budget": self.service_params.accuracy_budget,
            "query_walkers_served": self.query_params.query_walkers,
            "walk_steps_served": self.query_params.walk_steps,
            "kernels_requested": kernels.requested(),
            "kernels_active": kernels.active(),
            "num_shards": self.num_shards,
            "shard_strategy": self.plan.strategy,
            "plan_generation": self._plan_generation,
            "observed_sources": float(sum(self._node_loads.values())),
            "serve_backend": self.service_params.serve_backend,
            "serve_workers": self.service_params.serve_workers,
            "resident_graph": self.service_params.resident_graph,
            "cache_size": sum(len(cache) for cache in self.shard_caches),
            "cache_capacity": self.service_params.cache_capacity * self.num_shards,
            "cache_memory_bytes": sum(
                cache.memory_bytes() for cache in self.shard_caches
            ),
            "cache_hits": hits,
            "cache_misses": sum(cache.stats.misses for cache in self.shard_caches),
            "cache_evictions": sum(
                cache.stats.evictions for cache in self.shard_caches
            ),
            "cache_inserts": sum(cache.stats.inserts for cache in self.shard_caches),
            "cache_invalidations": sum(
                cache.stats.invalidations for cache in self.shard_caches
            ),
            # Cumulative update-routed evictions (invalidate_sources /
            # invalidate_reachable), summed across shards — the figure to
            # correlate with update storms, distinct from capacity
            # "cache_evictions".
            "cache_evictions_routed": sum(
                cache.stats.invalidations for cache in self.shard_caches
            ),
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "last_batch_payload_bytes": self.last_batch_payload_bytes,
            "shards": shard_rows,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedQueryService(graph={self.graph.name!r}, "
            f"n_nodes={self.graph.n_nodes}, shards={self.num_shards}, "
            f"strategy={self.plan.strategy!r}, version={self._version}, "
            f"queries={self._counters['queries']})"
        )
