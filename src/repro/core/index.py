"""The persisted CloudWalker index: the diagonal correction vector.

The whole offline phase of CloudWalker produces a single vector ``x`` with
one entry per node (the diagonal of the correction matrix ``D``).  Every
online query only needs ``x`` and the graph, so the index is tiny compared to
the graph itself — the property that lets CloudWalker answer "big SimRank"
queries with "instant response".
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.config import SimRankParams
from repro.errors import CloudWalkerError
from repro.graph.digraph import DiGraph

PathLike = Union[str, os.PathLike]


@dataclass
class BuildInfo:
    """Provenance of an index build (used by benchmarks and EXPERIMENTS.md)."""

    execution_model: str = "local"
    monte_carlo_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    jacobi_residual: float = float("nan")
    system_nnz: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "execution_model": self.execution_model,
            "monte_carlo_seconds": self.monte_carlo_seconds,
            "solve_seconds": self.solve_seconds,
            "total_seconds": self.total_seconds,
            "jacobi_residual": self.jacobi_residual,
            "system_nnz": self.system_nnz,
            **self.extras,
        }


@dataclass
class DiagonalIndex:
    """The diagonal correction vector ``x = diag(D)`` plus provenance.

    Attributes
    ----------
    diagonal:
        One float per node.
    params:
        The parameters used to build the index.
    graph_name / n_nodes / n_edges:
        Fingerprint of the graph the index was built for; queries check the
        node count so a stale index cannot silently be used with a different
        graph.
    build_info:
        Timings and diagnostics of the build.
    """

    diagonal: np.ndarray
    params: SimRankParams
    graph_name: str
    n_nodes: int
    n_edges: int
    build_info: BuildInfo = field(default_factory=BuildInfo)

    def __post_init__(self) -> None:
        self.diagonal = np.asarray(self.diagonal, dtype=np.float64).ravel()
        if self.diagonal.shape[0] != self.n_nodes:
            raise CloudWalkerError(
                f"diagonal has {self.diagonal.shape[0]} entries but the graph "
                f"has {self.n_nodes} nodes"
            )

    def validate_for(self, graph: DiGraph) -> None:
        """Raise if the index does not match ``graph``."""
        if graph.n_nodes != self.n_nodes:
            raise CloudWalkerError(
                f"index was built for a graph with {self.n_nodes} nodes but the "
                f"query graph has {graph.n_nodes}"
            )

    @property
    def memory_bytes(self) -> int:
        """Size of the index payload (one float per node)."""
        return int(self.diagonal.nbytes)

    def summary(self) -> Dict[str, Any]:
        """Human-readable summary used by reports."""
        return {
            "graph_name": self.graph_name,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "diag_min": float(self.diagonal.min()) if self.n_nodes else float("nan"),
            "diag_max": float(self.diagonal.max()) if self.n_nodes else float("nan"),
            "diag_mean": float(self.diagonal.mean()) if self.n_nodes else float("nan"),
            "index_bytes": self.memory_bytes,
            **self.build_info.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Save the index as a compressed ``.npz`` file.

        The write is atomic (temp file + rename in the target directory), so
        a query service cold-starting from ``path`` can never observe a
        half-written index even if a concurrent re-index crashes mid-save.
        """
        path = Path(path)
        if path.suffix != ".npz":
            # np.savez would append the suffix itself; do it explicitly so
            # the rename below targets the file load() will be pointed at.
            path = path.with_name(path.name + ".npz")
        params = self.params.to_dict()
        # A unique temp name keeps concurrent savers from truncating each
        # other's in-progress writes; whichever rename lands last wins with
        # a complete file either way.
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                self._write_npz(handle, params)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def _write_npz(self, handle, params: Dict[str, Any]) -> None:
        np.savez_compressed(
            handle,
            diagonal=self.diagonal,
            graph_name=np.array(self.graph_name),
            n_nodes=np.array(self.n_nodes, dtype=np.int64),
            n_edges=np.array(self.n_edges, dtype=np.int64),
            params_keys=np.array(list(params.keys())),
            params_values=np.array(
                [repr(value) for value in params.values()]
            ),
            execution_model=np.array(self.build_info.execution_model),
            timings=np.array(
                [
                    self.build_info.monte_carlo_seconds,
                    self.build_info.solve_seconds,
                    self.build_info.total_seconds,
                    self.build_info.jacobi_residual,
                    float(self.build_info.system_nnz),
                ]
            ),
        )

    @classmethod
    def load(cls, path: PathLike) -> "DiagonalIndex":
        """Load an index previously written by :meth:`save`."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                params_dict = {
                    key: _parse_literal(value)
                    for key, value in zip(
                        data["params_keys"].tolist(), data["params_values"].tolist()
                    )
                }
                timings = data["timings"]
                build_info = BuildInfo(
                    execution_model=str(data["execution_model"]),
                    monte_carlo_seconds=float(timings[0]),
                    solve_seconds=float(timings[1]),
                    total_seconds=float(timings[2]),
                    jacobi_residual=float(timings[3]),
                    system_nnz=int(timings[4]),
                )
                return cls(
                    diagonal=data["diagonal"],
                    params=SimRankParams.from_dict(params_dict),
                    graph_name=str(data["graph_name"]),
                    n_nodes=int(data["n_nodes"]),
                    n_edges=int(data["n_edges"]),
                    build_info=build_info,
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CloudWalkerError(f"cannot load index from {path}: {exc}") from exc


def _parse_literal(text: str) -> Any:
    """Parse the repr of a params value back into a Python object."""
    if text == "None":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip("'\"")
