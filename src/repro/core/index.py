"""The persisted CloudWalker index: the diagonal correction vector.

The whole offline phase of CloudWalker produces a single vector ``x`` with
one entry per node (the diagonal of the correction matrix ``D``).  Every
online query only needs ``x`` and the graph, so the index is tiny compared to
the graph itself — the property that lets CloudWalker answer "big SimRank"
queries with "instant response".

Three persistence layers live here:

:class:`DiagonalIndex`
    The index payload itself plus provenance, with atomic ``.npz``
    save/load.
:class:`SnapshotStore`
    Versioned, bounded-retention snapshots of one index lineage, optionally
    carrying the Monte-Carlo linear system so incremental maintenance
    survives restarts.
:class:`ShardedIndex` / :class:`ShardedSnapshotStore`
    The sharded deployment's view: the (broadcast) diagonal plus a
    :class:`~repro.graph.partition.ShardPlan` and per-shard versions, and a
    snapshot directory holding one :class:`SnapshotStore` per shard — each
    shard persists the full diagonal next to *its own rows* of the linear
    system.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.config import SimRankParams
from repro.errors import CloudWalkerError
from repro.graph.digraph import DiGraph
from repro.graph.partition import ShardPlan

PathLike = Union[str, os.PathLike]


def atomic_write(path: Path, writer: Callable[[Any], None]) -> None:
    """Write a file atomically: temp file in the target directory + rename.

    ``writer`` receives an open binary file handle.  A reader pointed at
    ``path`` can never observe a half-written file even if the writer
    crashes mid-save; concurrent writers cannot truncate each other's
    in-progress writes because every writer gets a unique temp name —
    whichever rename lands last wins with a complete file either way.
    Shared by :meth:`DiagonalIndex.save` and :class:`SnapshotStore`.
    """
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


@dataclass
class BuildInfo:
    """Provenance of an index build (used by benchmarks; see docs/DESIGN.md)."""

    execution_model: str = "local"
    monte_carlo_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    jacobi_residual: float = float("nan")
    system_nnz: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Timings and diagnostics as a plain dict (merged into summaries)."""
        return {
            "execution_model": self.execution_model,
            "monte_carlo_seconds": self.monte_carlo_seconds,
            "solve_seconds": self.solve_seconds,
            "total_seconds": self.total_seconds,
            "jacobi_residual": self.jacobi_residual,
            "system_nnz": self.system_nnz,
            **self.extras,
        }


@dataclass
class DiagonalIndex:
    """The diagonal correction vector ``x = diag(D)`` plus provenance.

    Attributes
    ----------
    diagonal:
        One float per node.
    params:
        The parameters used to build the index.
    graph_name / n_nodes / n_edges:
        Fingerprint of the graph the index was built for; queries check the
        node count so a stale index cannot silently be used with a different
        graph.
    build_info:
        Timings and diagnostics of the build.
    """

    diagonal: np.ndarray
    params: SimRankParams
    graph_name: str
    n_nodes: int
    n_edges: int
    build_info: BuildInfo = field(default_factory=BuildInfo)

    def __post_init__(self) -> None:
        self.diagonal = np.asarray(self.diagonal, dtype=np.float64).ravel()
        if self.diagonal.shape[0] != self.n_nodes:
            raise CloudWalkerError(
                f"diagonal has {self.diagonal.shape[0]} entries but the graph "
                f"has {self.n_nodes} nodes"
            )

    def validate_for(self, graph: DiGraph) -> None:
        """Raise if the index does not match ``graph``.

        Both dimensions of the fingerprint are checked: a graph with the
        right node count but a different edge count is a *stale* graph (for
        example, the pre-update edge list paired with a post-update
        snapshot), and serving it against this index would silently produce
        answers for a graph that no longer exists.
        """
        if graph.n_nodes != self.n_nodes:
            raise CloudWalkerError(
                f"index was built for a graph with {self.n_nodes} nodes but the "
                f"query graph has {graph.n_nodes}"
            )
        if graph.n_edges != self.n_edges:
            raise CloudWalkerError(
                f"index was built for a graph with {self.n_edges} edges but the "
                f"query graph has {graph.n_edges}; the graph is stale relative "
                f"to this index (or vice versa)"
            )

    @property
    def memory_bytes(self) -> int:
        """Size of the index payload (one float per node)."""
        return int(self.diagonal.nbytes)

    def summary(self) -> Dict[str, Any]:
        """Human-readable summary used by reports."""
        return {
            "graph_name": self.graph_name,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "diag_min": float(self.diagonal.min()) if self.n_nodes else float("nan"),
            "diag_max": float(self.diagonal.max()) if self.n_nodes else float("nan"),
            "diag_mean": float(self.diagonal.mean()) if self.n_nodes else float("nan"),
            "index_bytes": self.memory_bytes,
            **self.build_info.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Save the index as a compressed ``.npz`` file.

        The write is atomic (temp file + rename in the target directory), so
        a query service cold-starting from ``path`` can never observe a
        half-written index even if a concurrent re-index crashes mid-save.
        """
        path = Path(path)
        if path.suffix != ".npz":
            # np.savez would append the suffix itself; do it explicitly so
            # the rename below targets the file load() will be pointed at.
            path = path.with_name(path.name + ".npz")
        params = self.params.to_dict()
        atomic_write(path, lambda handle: self._write_npz(handle, params))

    def _write_npz(self, handle, params: Dict[str, Any]) -> None:
        np.savez_compressed(
            handle,
            diagonal=self.diagonal,
            graph_name=np.array(self.graph_name),
            n_nodes=np.array(self.n_nodes, dtype=np.int64),
            n_edges=np.array(self.n_edges, dtype=np.int64),
            params_keys=np.array(list(params.keys())),
            params_values=np.array(
                [repr(value) for value in params.values()]
            ),
            execution_model=np.array(self.build_info.execution_model),
            timings=np.array(
                [
                    self.build_info.monte_carlo_seconds,
                    self.build_info.solve_seconds,
                    self.build_info.total_seconds,
                    self.build_info.jacobi_residual,
                    float(self.build_info.system_nnz),
                ]
            ),
        )

    @classmethod
    def load(cls, path: PathLike) -> "DiagonalIndex":
        """Load an index previously written by :meth:`save`."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                params_dict = {
                    key: _parse_literal(value)
                    for key, value in zip(
                        data["params_keys"].tolist(), data["params_values"].tolist()
                    )
                }
                timings = data["timings"]
                build_info = BuildInfo(
                    execution_model=str(data["execution_model"]),
                    monte_carlo_seconds=float(timings[0]),
                    solve_seconds=float(timings[1]),
                    total_seconds=float(timings[2]),
                    jacobi_residual=float(timings[3]),
                    system_nnz=int(timings[4]),
                )
                return cls(
                    diagonal=data["diagonal"],
                    params=SimRankParams.from_dict(params_dict),
                    graph_name=str(data["graph_name"]),
                    n_nodes=int(data["n_nodes"]),
                    n_edges=int(data["n_edges"]),
                    build_info=build_info,
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CloudWalkerError(f"cannot load index from {path}: {exc}") from exc


def _parse_literal(text: str) -> Any:
    """Parse the repr of a params value back into a Python object."""
    if text == "None":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip("'\"")


# --------------------------------------------------------------------------- #
# Versioned snapshots
# --------------------------------------------------------------------------- #
class SnapshotStore:
    """Versioned, bounded-retention snapshots of a diagonal index.

    A snapshot directory holds one ``index-v<NNNNNNNN>.npz`` per version
    (written through the same atomic machinery as :meth:`DiagonalIndex.save`)
    and, optionally, a ``system-v<NNNNNNNN>.npz`` with the Monte-Carlo
    linear system ``A`` the index was solved from.  Persisting the system is
    what makes incremental maintenance survive restarts: a fresh process can
    :meth:`repro.core.incremental.IncrementalCloudWalker.attach` the loaded
    system and update it for the cost of the affected rows only, instead of
    re-estimating every row first.

    Versions are monotonically increasing integers; :meth:`save_snapshot`
    assigns ``latest + 1`` and prunes snapshots beyond ``retain`` so a
    long-running update stream cannot fill the disk.
    """

    _INDEX_PATTERN = re.compile(r"^index-v(\d{8})\.npz$")

    def __init__(self, directory: PathLike, retain: int = 5) -> None:
        if retain < 1:
            raise CloudWalkerError(f"snapshot retention must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.retain = retain

    # ------------------------------------------------------------------ #
    def index_path(self, version: int) -> Path:
        """Path of the index file for ``version``."""
        return self.directory / f"index-v{version:08d}.npz"

    def system_path(self, version: int) -> Path:
        """Path of the (optional) linear-system file for ``version``."""
        return self.directory / f"system-v{version:08d}.npz"

    def versions(self) -> List[int]:
        """All snapshot versions present on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = self._INDEX_PATTERN.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> Optional[int]:
        """The newest version on disk, or None for an empty store."""
        versions = self.versions()
        return versions[-1] if versions else None

    # ------------------------------------------------------------------ #
    def save_snapshot(
        self,
        index: DiagonalIndex,
        system: Optional[sparse.spmatrix] = None,
        version: Optional[int] = None,
    ) -> int:
        """Persist ``index`` (and optionally its system) as a new version.

        Returns the version written.  ``version`` defaults to ``latest + 1``
        (1 for an empty store); passing an explicit version must not move
        backwards, so restarted writers cannot silently shadow newer state.
        """
        latest = self.latest_version()
        if version is None:
            version = (latest or 0) + 1
        elif latest is not None and version <= latest:
            raise CloudWalkerError(
                f"snapshot version must increase: latest is {latest}, got {version}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        index.save(self.index_path(version))
        if system is not None:
            csr = sparse.csr_matrix(system)
            atomic_write(
                self.system_path(version),
                lambda handle: np.savez_compressed(
                    handle,
                    data=csr.data,
                    indices=csr.indices,
                    indptr=csr.indptr,
                    shape=np.asarray(csr.shape, dtype=np.int64),
                ),
            )
        self.prune()
        return version

    def load(self, version: int) -> DiagonalIndex:
        """Load the index of a specific version."""
        return DiagonalIndex.load(self.index_path(version))

    def describe(self, version: int) -> Dict[str, Any]:
        """Cheap metadata of one snapshot, without loading the diagonal.

        Reads only the scalar entries of the ``.npz`` (lazy per-member
        access), so listing a directory of large-graph snapshots stays
        O(versions), not O(versions x index size).
        """
        path = self.index_path(version)
        try:
            with np.load(path, allow_pickle=False) as data:
                n_nodes, n_edges = int(data["n_nodes"]), int(data["n_edges"])
        except (OSError, KeyError, ValueError) as exc:
            raise CloudWalkerError(f"cannot read snapshot {path}: {exc}") from exc
        return {
            "version": version,
            "n_nodes": n_nodes,
            "n_edges": n_edges,
            "has_system": self.system_path(version).exists(),
            "path": str(path),
        }

    def load_latest(self) -> Tuple[int, DiagonalIndex]:
        """Load the newest snapshot as ``(version, index)``."""
        latest = self.latest_version()
        if latest is None:
            raise CloudWalkerError(f"no snapshots found in {self.directory}")
        return latest, self.load(latest)

    def load_system(self, version: Optional[int] = None) -> Optional[sparse.csr_matrix]:
        """Load the linear system of ``version`` (latest by default).

        Returns None when the snapshot was saved without a system — callers
        fall back to re-estimating it (see ``IncrementalCloudWalker.attach``).
        """
        if version is None:
            version = self.latest_version()
            if version is None:
                return None
        path = self.system_path(version)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                shape = tuple(int(extent) for extent in data["shape"])
                return sparse.csr_matrix(
                    (data["data"], data["indices"], data["indptr"]), shape=shape
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CloudWalkerError(f"cannot load system from {path}: {exc}") from exc

    def prune(self, retain: Optional[int] = None) -> List[int]:
        """Delete all but the newest ``retain`` versions; returns the removed."""
        retain = retain if retain is not None else self.retain
        if retain < 1:
            raise CloudWalkerError(f"snapshot retention must be >= 1, got {retain}")
        versions = self.versions()
        removed = versions[:-retain] if len(versions) > retain else []
        for version in removed:
            with contextlib.suppress(OSError):
                self.index_path(version).unlink()
            with contextlib.suppress(OSError):
                self.system_path(version).unlink()
        return removed

    def __repr__(self) -> str:
        return (
            f"SnapshotStore(directory={str(self.directory)!r}, "
            f"versions={self.versions()}, retain={self.retain})"
        )


def save_snapshot(
    index: DiagonalIndex,
    directory: PathLike,
    system: Optional[sparse.spmatrix] = None,
    retain: int = 5,
) -> int:
    """Convenience wrapper: persist one snapshot into ``directory``."""
    return SnapshotStore(directory, retain=retain).save_snapshot(index, system=system)


def load_latest(directory: PathLike) -> Tuple[int, DiagonalIndex]:
    """Convenience wrapper: load the newest snapshot from ``directory``."""
    return SnapshotStore(directory).load_latest()


# --------------------------------------------------------------------------- #
# Sharded deployments
# --------------------------------------------------------------------------- #
@dataclass
class ShardedIndex:
    """The serving state of a sharded deployment.

    The diagonal itself is *broadcast*: every shard serves from the same
    full vector (it is one float per node — the paper ships it to every
    worker for the online phase).  What is sharded is the *maintenance*
    state: each shard owns the rows of the linear system for the nodes the
    plan assigns to it, and carries its own version counter that only moves
    when one of its rows is re-estimated.

    Attributes
    ----------
    index:
        The global :class:`DiagonalIndex` (identical on every shard).
    plan:
        Node-to-shard assignment; also routes queries and edge insertions.
    shard_versions:
        Per-shard generation counters, aligned with the plan's shard ids.
        ``shard_versions[k]`` is the global :attr:`index version
        <repro.service.QueryService.index_version>` at which shard ``k``'s
        rows were last (re-)estimated.
    """

    index: DiagonalIndex
    plan: ShardPlan
    shard_versions: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.shard_versions:
            self.shard_versions = [1] * self.plan.num_shards
        if len(self.shard_versions) != self.plan.num_shards:
            raise CloudWalkerError(
                f"{len(self.shard_versions)} shard versions for a plan with "
                f"{self.plan.num_shards} shards"
            )

    @property
    def num_shards(self) -> int:
        """Number of shards (``K``) in the plan."""
        return self.plan.num_shards

    def validate_for(self, graph: DiGraph) -> None:
        """Raise if the (global) index does not match ``graph``."""
        self.index.validate_for(graph)

    def touch(self, shards: Sequence[int], version: int) -> None:
        """Record that ``shards`` were re-estimated at global ``version``."""
        for shard in shards:
            self.shard_versions[shard] = version

    def summary(self) -> Dict[str, Any]:
        """Human-readable summary (index summary plus shard layout)."""
        return {
            **self.index.summary(),
            "num_shards": self.num_shards,
            "shard_strategy": self.plan.strategy,
            "shard_versions": list(self.shard_versions),
        }


class ShardedSnapshotStore:
    """Versioned snapshots of a sharded deployment — one store per shard.

    Layout of a sharded snapshot directory::

        <directory>/
            shard_plan.json         # the lineage's base ShardPlan
            shard_plan-v*.json      # plan generations: the plan effective
                                    #   FROM that snapshot version on
            shard-00/               # a plain SnapshotStore per shard:
                index-v*.npz        #   the (global) diagonal index
                system-v*.npz       #   ONLY this shard's rows of the system
            shard-01/
            ...

    Every shard directory is a plain :class:`SnapshotStore`, so all its
    guarantees carry over unchanged: atomic writes, monotone versions,
    bounded retention.  A *consistent* sharded snapshot is a version present
    in **every** shard store; :meth:`versions` returns exactly those, so a
    crash that wrote only some shards rolls back to the last complete
    version on load.  The partial files are ignored by every load, replaced
    (never adopted) if a later save reuses their version number, and
    eventually dropped by retention pruning.

    **Plan generations.**  A live rebalance changes the shard plan without
    starting a new lineage: the save that first uses a new plan also writes
    ``shard_plan-v{version}.json``, and the plan *governing* a version is
    the newest generation at or before it (the base ``shard_plan.json``
    when none is).  The shard *count* stays immutable per directory — only
    the node-to-shard assignment migrates — so the consistency intersection
    is well-defined across generations.  A version whose governing plan
    file is corrupt is excluded from :meth:`versions`, rolling loads back
    to the last version with a readable plan; the per-shard system blocks
    sum to the same full system under any plan, so a rollback (or a crash
    between the plan write and the shard writes) can never change answers,
    only which placement serves them.
    """

    PLAN_FILE = "shard_plan.json"
    _PLAN_PATTERN = re.compile(r"^shard_plan-v(\d{8})\.json$")

    def __init__(self, directory: PathLike, retain: int = 5) -> None:
        self.directory = Path(directory)
        self.retain = retain

    # ------------------------------------------------------------------ #
    @classmethod
    def is_sharded(cls, directory: PathLike) -> bool:
        """True when ``directory`` holds a sharded (not plain) snapshot."""
        return (Path(directory) / cls.PLAN_FILE).exists()

    def shard_store(self, shard: int) -> SnapshotStore:
        """The plain :class:`SnapshotStore` of one shard."""
        return SnapshotStore(self.directory / f"shard-{shard:02d}",
                             retain=self.retain)

    def plan_path(self, version: int) -> Path:
        """Path of the plan-generation file effective from ``version`` on."""
        return self.directory / f"shard_plan-v{version:08d}.json"

    def plan_generation_versions(self) -> List[int]:
        """Snapshot versions at which a new plan generation took effect."""
        if not self.directory.exists():
            return []
        found = []
        for path in self.directory.iterdir():
            match = self._PLAN_PATTERN.match(path.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _governing_plan_path(self, version: int) -> Path:
        """File holding the plan that governs snapshot ``version``."""
        generations = [gen for gen in self.plan_generation_versions()
                       if gen <= version]
        if generations:
            return self.plan_path(max(generations))
        return self.directory / self.PLAN_FILE

    def _load_plan_file(self, path: Path) -> ShardPlan:
        try:
            return ShardPlan.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError, KeyError) as exc:
            raise CloudWalkerError(f"cannot load shard plan from {path}: {exc}") from exc

    def load_plan(self, version: Optional[int] = None) -> ShardPlan:
        """Load the :class:`ShardPlan` governing ``version``.

        Without a version: the plan governing the newest consistent
        snapshot, or the base plan for a store with no consistent version
        yet.  Raises :class:`~repro.errors.CloudWalkerError` when the
        governing plan file is absent or corrupt.
        """
        if version is None:
            version = self.latest_version()
            if version is None:
                return self._load_plan_file(self.directory / self.PLAN_FILE)
        return self._load_plan_file(self._governing_plan_path(version))

    def _save_plan(self, plan: ShardPlan, version: int) -> None:
        """Record ``plan`` as the one governing snapshots from ``version``.

        First save of the lineage writes the base ``shard_plan.json``.
        Later saves compare against the plan governing the versions
        *before* this one: an unchanged plan writes nothing (and removes a
        crashed save's same-version generation debris, which may describe
        a plan that was never adopted); a changed plan — a rebalance —
        writes a new generation file at ``version``.  The shard count is
        immutable per directory either way.
        """
        base = self.directory / self.PLAN_FILE

        def writer(handle) -> None:
            handle.write(json.dumps(plan.to_dict(), indent=2).encode("utf-8"))

        if not base.exists():
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write(base, writer)
            return
        effective = self._load_plan_file(self._governing_plan_path(version - 1))
        if effective == plan:
            with contextlib.suppress(OSError):
                self.plan_path(version).unlink()
            return
        if effective.num_shards != plan.num_shards:
            raise CloudWalkerError(
                f"snapshot directory {self.directory} holds a "
                f"{effective.num_shards}-shard lineage; the shard count is "
                f"immutable per directory (got a {plan.num_shards}-shard "
                "plan) — re-shard into a fresh directory"
            )
        atomic_write(self.plan_path(version), writer)

    # ------------------------------------------------------------------ #
    def versions(self) -> List[int]:
        """Versions present in *every* shard store (consistent snapshots).

        A version whose governing plan file does not load is excluded:
        a crash (or corruption) that damaged a new plan generation rolls
        the store back to the last version with a readable plan.
        """
        plan_path = self.directory / self.PLAN_FILE
        if not plan_path.exists():
            return []
        plan = self._load_plan_file(plan_path)
        common: Optional[set] = None
        for shard in range(plan.num_shards):
            present = set(self.shard_store(shard).versions())
            common = present if common is None else common & present
        return sorted(
            version for version in (common or ())
            if self._plan_loadable(version)
        )

    def _plan_loadable(self, version: int) -> bool:
        try:
            self._load_plan_file(self._governing_plan_path(version))
            return True
        except CloudWalkerError:
            return False

    def latest_version(self) -> Optional[int]:
        """Newest consistent version, or None for an empty store."""
        versions = self.versions()
        return versions[-1] if versions else None

    def save_snapshot(
        self,
        sharded: ShardedIndex,
        shard_systems: Optional[Sequence[Optional[sparse.spmatrix]]] = None,
        version: Optional[int] = None,
    ) -> int:
        """Persist one consistent sharded snapshot; returns its version.

        Writes the plan (the base file on the first save; a new
        generation file when the plan changed — a rebalance), then every
        shard's store: the global diagonal index plus, when
        ``shard_systems`` is given, that shard's system block.
        ``version`` defaults to ``latest + 1``.  The plan lands *before*
        the shard files on purpose: a crash in between leaves ``version``
        inconsistent, so loads roll back to the previous version under its
        own plan and the orphaned generation is replaced (or removed) by
        the next save.  A shard already holding ``version`` is skipped
        only when that version is *consistent* (present in every shard) —
        a genuine re-save no-op.  A shard file at ``version`` that is not
        consistent is the debris of a crashed earlier save and may
        describe different data, so it is replaced, never adopted into the
        new snapshot.
        """
        consistent = set(self.versions())
        if version is None:
            version = (max(consistent) if consistent else 0) + 1
        self._save_plan(sharded.plan, version)
        for shard in range(sharded.num_shards):
            store = self.shard_store(shard)
            if store.latest_version() == version:
                if version in consistent:
                    continue
                with contextlib.suppress(OSError):
                    store.index_path(version).unlink()
                with contextlib.suppress(OSError):
                    store.system_path(version).unlink()
            system = shard_systems[shard] if shard_systems is not None else None
            store.save_snapshot(sharded.index, system=system, version=version)
        return version

    def load(
        self, version: Optional[int] = None
    ) -> Tuple[int, ShardedIndex, Optional[sparse.csr_matrix]]:
        """Load a consistent snapshot as ``(version, sharded_index, system)``.

        ``version`` defaults to the newest consistent one.  The plan is
        the one *governing* that version (a lineage that rebalanced loads
        older versions under their original plan).  The returned system is
        the gather (sum) of the per-shard blocks — bitwise-equal to the
        system the writing service maintained — or None when any shard
        was saved without its block (callers then re-estimate, just like
        attaching to a plain index file).
        """
        if version is None:
            version = self.latest_version()
            if version is None:
                raise CloudWalkerError(
                    f"no consistent sharded snapshots found in {self.directory}"
                )
        elif version not in self.versions():
            raise CloudWalkerError(
                f"version {version} is not a consistent snapshot in "
                f"{self.directory} (have {self.versions()})"
            )
        plan = self.load_plan(version)
        index = self.shard_store(0).load(version)
        system: Optional[sparse.csr_matrix] = None
        blocks: List[sparse.csr_matrix] = []
        for shard in range(plan.num_shards):
            block = self.shard_store(shard).load_system(version)
            if block is None:
                blocks = []
                break
            blocks.append(block)
        if blocks:
            system = blocks[0]
            for block in blocks[1:]:
                system = system + block
            system = system.tocsr()
            system.eliminate_zeros()
            system.sort_indices()
        sharded = ShardedIndex(index=index, plan=plan,
                               shard_versions=[version] * plan.num_shards)
        return version, sharded, system

    def prune(self, retain: Optional[int] = None) -> None:
        """Prune every shard store to the newest ``retain`` versions.

        Plan-generation files that no longer govern any remaining version
        are removed with the snapshots that needed them; the base plan and
        any generation newer than the newest consistent version (an
        in-flight save) are always kept.
        """
        plan = self._load_plan_file(self.directory / self.PLAN_FILE)
        for shard in range(plan.num_shards):
            self.shard_store(shard).prune(retain)
        remaining = self.versions()
        generations = self.plan_generation_versions()
        governing = set()
        for version in remaining:
            effective = [gen for gen in generations if gen <= version]
            if effective:
                governing.add(max(effective))
        for gen in generations:
            if gen not in governing and remaining and gen <= max(remaining):
                with contextlib.suppress(OSError):
                    self.plan_path(gen).unlink()

    def __repr__(self) -> str:
        return (
            f"ShardedSnapshotStore(directory={str(self.directory)!r}, "
            f"versions={self.versions()}, retain={self.retain})"
        )
