"""Unit tests for the cluster cost model and executor backends."""

import pytest

from repro.config import ClusterSpec
from repro.engine import ClusterContext
from repro.engine.cost_model import ClusterCostModel
from repro.engine.executor import ProcessBackend, SerialBackend, ThreadBackend, make_backend
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.errors import CapacityExceededError, ConfigurationError


def _synthetic_metrics(num_tasks=8, task_seconds=0.1, shuffle_bytes=0, broadcast_bytes=0):
    stage = StageMetrics(name="stage", kind="narrow", shuffle_bytes=shuffle_bytes)
    for index in range(num_tasks):
        stage.tasks.append(
            TaskMetrics(
                stage_name="stage",
                partition=index,
                duration_seconds=task_seconds,
                input_records=100,
                output_records=100,
            )
        )
    return JobMetrics(job_id=1, action="test", stages=[stage],
                      broadcast_bytes=broadcast_bytes)


class TestCostModel:
    def test_more_cores_reduce_wall_clock(self):
        metrics = _synthetic_metrics(num_tasks=32, task_seconds=0.2)
        small = ClusterCostModel(ClusterSpec(machines=1, cores_per_machine=2))
        big = ClusterCostModel(ClusterSpec(machines=10, cores_per_machine=16))
        assert big.estimate(metrics).wall_clock_seconds < small.estimate(metrics).wall_clock_seconds

    def test_wall_clock_bounded_by_slowest_task(self):
        metrics = _synthetic_metrics(num_tasks=4, task_seconds=1.0)
        huge = ClusterCostModel(ClusterSpec(machines=100, cores_per_machine=64))
        assert huge.estimate(metrics).wall_clock_seconds >= 1.0

    def test_shuffle_costs_network_time(self):
        cluster = ClusterSpec(machines=4, cores_per_machine=4, network_gbps=1.0)
        model = ClusterCostModel(cluster)
        without = model.estimate(_synthetic_metrics(shuffle_bytes=0))
        with_shuffle = model.estimate(_synthetic_metrics(shuffle_bytes=10_000_000_000))
        assert with_shuffle.wall_clock_seconds > without.wall_clock_seconds
        assert with_shuffle.shuffle_seconds > 0

    def test_single_machine_shuffle_is_free(self):
        model = ClusterCostModel(ClusterSpec(machines=1, cores_per_machine=4))
        estimate = model.estimate(_synthetic_metrics(shuffle_bytes=10_000_000_000))
        assert estimate.shuffle_seconds == pytest.approx(0.0)

    def test_broadcast_cost_scales_with_machines(self):
        metrics = _synthetic_metrics(broadcast_bytes=1_000_000_000)
        few = ClusterCostModel(ClusterSpec(machines=2, cores_per_machine=4, network_gbps=10))
        many = ClusterCostModel(ClusterSpec(machines=10, cores_per_machine=4, network_gbps=10))
        assert many.estimate(metrics).broadcast_seconds > few.estimate(metrics).broadcast_seconds

    def test_broadcast_feasibility(self):
        cluster = ClusterSpec(machines=2, cores_per_machine=4, memory_per_machine_gb=1.0)
        model = ClusterCostModel(cluster)
        assert model.broadcast_fits(100_000_000)
        assert not model.broadcast_fits(10_000_000_000)
        with pytest.raises(CapacityExceededError):
            model.check_broadcast_fits(10_000_000_000, what="graph")
        estimate = model.estimate(_synthetic_metrics(broadcast_bytes=10_000_000_000))
        assert not estimate.feasible
        assert "memory" in estimate.infeasible_reason

    def test_estimate_scaled_graph_job(self):
        model = ClusterCostModel(ClusterSpec.paper_cluster())
        metrics = _synthetic_metrics(num_tasks=16, task_seconds=0.05)
        small = model.estimate_scaled_graph_job(
            metrics, measured_edges=1_000, target_edges=1_000
        )
        big = model.estimate_scaled_graph_job(
            metrics, measured_edges=1_000, target_edges=1_000_000
        )
        assert big.wall_clock_seconds > small.wall_clock_seconds

    def test_scaled_job_requires_positive_edges(self):
        model = ClusterCostModel(ClusterSpec())
        with pytest.raises(ValueError):
            model.estimate_scaled_graph_job(_synthetic_metrics(), 0, 10)

    def test_scaled_broadcast_model_becomes_infeasible(self):
        cluster = ClusterSpec(machines=10, cores_per_machine=16, memory_per_machine_gb=1.0)
        model = ClusterCostModel(cluster)
        metrics = _synthetic_metrics()
        estimate = model.estimate_scaled_graph_job(
            metrics, measured_edges=1_000, target_edges=10_000_000_000,
            is_broadcast_model=True,
        )
        assert not estimate.feasible
        rdd_estimate = model.estimate_scaled_graph_job(
            metrics, measured_edges=1_000, target_edges=10_000_000_000,
            is_broadcast_model=False,
        )
        assert rdd_estimate.feasible

    def test_estimate_to_dict(self):
        estimate = ClusterCostModel(ClusterSpec()).estimate(_synthetic_metrics())
        record = estimate.to_dict()
        assert record["feasible"] is True
        assert record["wall_clock_seconds"] > 0

    def test_paper_cluster_spec(self):
        spec = ClusterSpec.paper_cluster()
        assert spec.machines == 10
        assert spec.total_cores == 160
        assert spec.total_memory_gb == pytest.approx(3770.0)


def _square(value):
    return value * value


class TestBackends:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("threads"), ThreadBackend)
        assert isinstance(make_backend("processes"), ProcessBackend)
        with pytest.raises(ConfigurationError):
            make_backend("quantum")

    def test_serial_order_preserved(self):
        backend = SerialBackend()
        results = backend.run([lambda i=i: i * 2 for i in range(5)])
        assert results == [0, 2, 4, 6, 8]

    def test_thread_backend_order_preserved(self):
        backend = ThreadBackend(max_workers=4)
        try:
            results = backend.run([lambda i=i: i * 2 for i in range(20)])
            assert results == [i * 2 for i in range(20)]
        finally:
            backend.shutdown()

    def test_thread_backend_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(max_workers=0)

    def test_process_backend_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(max_workers=0)

    def test_process_backend_rejects_unpicklable_closure(self):
        # A closure over a local lambda cannot be pickled; the backend must
        # refuse it up front instead of surfacing an opaque worker error.
        from functools import partial

        local_fn = lambda value: value + 1  # noqa: E731
        backend = ProcessBackend(max_workers=2)
        with pytest.raises(ConfigurationError, match="not picklable"):
            backend.run([partial(_square, 2), lambda: local_fn(1)])

    def test_process_backend_runs_picklable_tasks(self):
        from functools import partial

        with ProcessBackend(max_workers=2) as backend:
            results = backend.run([partial(_square, value) for value in range(4)])
        assert results == [0, 1, 4, 9]

    def test_executor_repr(self):
        assert "SerialBackend" in repr(SerialBackend())
