"""Local execution backends for engine tasks.

A *task* is a zero-argument callable producing a partition's result.  The
scheduler hands the backend a list of tasks belonging to one stage; the
backend returns their results in order.  Three backends are provided:

``SerialBackend``
    Runs tasks in the calling thread.  Deterministic, easiest to debug, and
    the default (Python-level parallel speed-ups are limited by the GIL for
    the NumPy-light portions of the workload anyway).
``ThreadBackend``
    A ``ThreadPoolExecutor``; effective when tasks spend their time inside
    NumPy/SciPy kernels that release the GIL.
``ProcessBackend``
    A ``ProcessPoolExecutor``; requires tasks (and the data they close over)
    to be picklable, so it is opt-in.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
Task = Callable[[], T]


class ExecutorBackend:
    """Interface: run a batch of tasks and return their results in order."""

    name = "abstract"

    def run(self, tasks: Sequence[Task]) -> List[T]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutorBackend):
    """Run every task sequentially in the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> List[T]:
        return [task() for task in tasks]


class ThreadBackend(ExecutorBackend):
    """Run tasks on a shared thread pool."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List[T]:
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutorBackend):
    """Run tasks on a process pool (tasks must be picklable)."""

    name = "processes"

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Task]) -> List[T]:
        # Fail fast on unpicklable tasks: submitting one anyway would only
        # surface as an opaque PicklingError from a worker future, after the
        # pool has already been spun up.  The check pickles each task a
        # second time; that cost is accepted for the early, named diagnostic.
        for position, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except Exception as exc:
                raise ConfigurationError(
                    f"task {position} of {len(tasks)} cannot be sent to the "
                    f"process backend because it is not picklable ({exc}); "
                    "use module-level functions instead of closures or "
                    "lambdas, or switch to the 'serial'/'threads' backend"
                ) from exc
        # A fresh pool per stage keeps the implementation simple and avoids
        # leaking workers when callers forget to shut the backend down.
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(_call, task) for task in tasks]
            return [future.result() for future in futures]


def _call(task: Task) -> T:
    return task()


def make_backend(name: str, max_workers: int = 4) -> ExecutorBackend:
    """Factory used by :class:`~repro.engine.context.ClusterContext`."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers=max_workers)
    if name == "processes":
        return ProcessBackend(max_workers=max_workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected 'serial', 'threads' or 'processes'"
    )
