"""Configuration objects for CloudWalker.

The dataclasses defined here:

:class:`SimRankParams`
    The algorithmic parameters of CloudWalker, with the paper's default
    values (Table "default parameters": c=0.6, T=10, L=3, R=100, R'=10000).

:class:`ServiceParams`
    Knobs of the online query service: walk-distribution cache capacity and
    batch-planning limits (see :mod:`repro.service`).

:class:`UpdateParams`
    Knobs of the service's live-update path: the pending-edge queue bound,
    snapshot cadence/retention and the exact-re-estimation switch (see
    :mod:`repro.service.updates`).

:class:`ShardingParams`
    Shape of a sharded deployment: how many shards, how nodes are assigned
    to them, and which executor backend builds them concurrently (see
    :mod:`repro.core.sharding` and :mod:`repro.service.sharded`).

:class:`RebalanceParams`
    Knobs of workload-adaptive shard rebalancing: when the sharded
    service's observed per-shard load skew justifies migrating to a new
    :class:`~repro.graph.partition.ShardPlan` (see
    :mod:`repro.service.sharded`).

:class:`ClusterSpec`
    A description of the (simulated) cluster used by the engine's cost
    model.  The paper's testbed was 10 machines, each with 16 cores, 377 GB
    RAM and 20 TB of disk; :meth:`ClusterSpec.paper_cluster` reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimRankParams:
    """Algorithmic parameters of CloudWalker.

    Attributes
    ----------
    c:
        SimRank decay factor, ``0 < c < 1``.  Paper default 0.6.
    walk_steps:
        ``T`` — number of random-walk steps (truncation of the series).
    jacobi_iterations:
        ``L`` — number of Jacobi iterations used to solve ``A x = 1``.
    index_walkers:
        ``R`` — number of Monte-Carlo walkers per node when estimating the
        columns ``a_i`` of the linear system during offline indexing.
    query_walkers:
        ``R'`` — number of Monte-Carlo walkers used by the online MCSP /
        MCSS queries.
    seed:
        Base seed used to derive all pseudo-random streams.  ``None`` means
        nondeterministic.
    """

    c: float = 0.6
    walk_steps: int = 10
    jacobi_iterations: int = 3
    index_walkers: int = 100
    query_walkers: int = 10_000
    seed: Optional[int] = 2015

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ConfigurationError(f"decay factor c must be in (0, 1), got {self.c}")
        if self.walk_steps < 1:
            raise ConfigurationError(
                f"walk_steps (T) must be a positive integer, got {self.walk_steps}"
            )
        if self.jacobi_iterations < 0:
            raise ConfigurationError(
                f"jacobi_iterations (L) must be >= 0, got {self.jacobi_iterations}"
            )
        if self.index_walkers < 1:
            raise ConfigurationError(
                f"index_walkers (R) must be >= 1, got {self.index_walkers}"
            )
        if self.query_walkers < 1:
            raise ConfigurationError(
                f"query_walkers (R') must be >= 1, got {self.query_walkers}"
            )

    @classmethod
    def paper_defaults(cls) -> "SimRankParams":
        """Return the default parameters used throughout the paper."""
        return cls(
            c=0.6,
            walk_steps=10,
            jacobi_iterations=3,
            index_walkers=100,
            query_walkers=10_000,
            seed=2015,
        )

    @classmethod
    def fast_defaults(cls) -> "SimRankParams":
        """Cheaper parameters suited to unit tests and examples.

        The algorithmic structure is identical; only the Monte-Carlo budgets
        are reduced so small graphs index in milliseconds.
        """
        return cls(
            c=0.6,
            walk_steps=6,
            jacobi_iterations=3,
            index_walkers=50,
            query_walkers=400,
            seed=2015,
        )

    def with_(self, **changes: Any) -> "SimRankParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain-dict representation (used by index serialisation)."""
        return {
            "c": self.c,
            "walk_steps": self.walk_steps,
            "jacobi_iterations": self.jacobi_iterations,
            "index_walkers": self.index_walkers,
            "query_walkers": self.query_walkers,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimRankParams":
        """Reconstruct parameters from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class ServiceParams:
    """Knobs of the online query service (:mod:`repro.service`).

    Attributes
    ----------
    cache_capacity:
        Maximum number of per-source walk distributions kept in the LRU
        cache.  ``0`` disables caching entirely (every query re-simulates).
    max_batch_size:
        Maximum number of distinct sources simulated in one vectorised
        multi-source walk batch; larger batches amortise per-step overhead
        but increase peak memory (``sources * walkers`` walker slots).
    default_top_k:
        ``k`` used by top-k queries that do not specify one.
    serve_backend:
        Executor backend the sharded service scatters *query-time* work
        through (per-shard walk simulation and top-k ranking):
        ``"serial"``, ``"threads"`` or ``"processes"`` (see
        :mod:`repro.engine.executor`).  Like the build-time
        ``ShardingParams.backend``, it changes only wall-clock, never
        answers.  Ignored by the single-shard service.
    serve_workers:
        Worker bound for the ``threads`` / ``processes`` serve backends.
        The pool is persistent (spun up once, reused per batch); call
        ``ShardedQueryService.close`` to release it.
    resident_graph:
        Register the served graph as a resident object on the serve
        backend (see :meth:`repro.engine.executor.ExecutorBackend.
        ensure_resident`): process workers materialise it once per epoch
        from shared memory and scatter tasks ship only a handle, keeping
        per-batch payloads O(sources) instead of O(graph).  A no-op for
        the ``serial``/``threads`` backends (tasks already share the
        owner's memory) and for the single-shard service.  Disable to
        ship the graph inside every task (the pre-residency behaviour);
        answers are bitwise-identical either way.
    http_port:
        Default TCP port of the HTTP serving tier
        (:mod:`repro.service.http`); ``0`` asks the OS for an ephemeral
        port (the bound port is announced on startup).
    coalesce_window:
        Seconds the HTTP tier's cross-connection coalescer waits after the
        first queued request before executing the combined batch, so
        concurrent clients' sources are deduplicated into one scatter.
        ``0`` disables the wait (each drain takes whatever has queued —
        batching then comes only from requests arriving while a previous
        batch executes).  Keep well below client timeouts: the window is
        a latency floor for a lone request.
    max_in_flight:
        Admission bound of the HTTP tier: maximum queries admitted and not
        yet answered before new ones are refused with a 503 (and pending
        deferred edges before updates are refused with a 429).  Bounds
        queueing memory and tail latency under overload.
    accuracy_budget:
        Mean-absolute-error budget of the *approximate serving mode*.
        ``None`` (the default) keeps exact serving: every answer is
        bitwise-identical to the core computation at the index's own
        ``SimRankParams``.  A budget in ``(0, 1)`` lets the service answer
        queries from fewer walkers / shorter walks, trading accuracy
        (bounded by the budget) for latency.  The cheap operating point
        comes from ``approx_walkers`` / ``approx_steps`` when given,
        otherwise it is calibrated at service construction against
        :func:`repro.analysis.accuracy.exact_linearized_matrix` ground
        truth (see :func:`repro.analysis.accuracy.calibrate_query_budget`
        — exact ground truth is quadratic in graph size, so precalibrate
        on large graphs).  Index maintenance (updates, snapshots,
        rebalancing) always runs at the exact parameters.
    approx_walkers:
        Explicit query-walker count of the approximate mode; requires
        ``accuracy_budget``.  ``None`` asks calibration to choose.
    approx_steps:
        Explicit walk-step count of the approximate mode; requires
        ``accuracy_budget``.  ``None`` keeps the exact ``walk_steps``
        unless calibration chooses a shorter walk.
    kernels:
        Which implementation tier runs the core inner loops (the
        pair-combine step dot, the self-meeting accumulation, and the
        interval-reachability Dijkstra): ``"python"`` (the NumPy oracles)
        or ``"numba"`` (jitted twins, bitwise-identical by construction —
        see :mod:`repro.core.kernels`).  ``"numba"`` on an interpreter
        without numba installed is not an error: execution falls back to
        the oracles, so the flag is safe to bake into deployment configs.
    """

    cache_capacity: int = 1024
    max_batch_size: int = 256
    default_top_k: int = 10
    serve_backend: str = "serial"
    serve_workers: int = 4
    resident_graph: bool = True
    http_port: int = 8080
    coalesce_window: float = 0.002
    max_in_flight: int = 64
    accuracy_budget: Optional[float] = None
    approx_walkers: Optional[int] = None
    approx_steps: Optional[int] = None
    kernels: str = "python"

    _VALID_SERVE_BACKENDS = ("serial", "threads", "processes")
    # Kept in sync with repro.core.kernels.KERNEL_MODES (hardcoded here to
    # keep config importable before the core package).
    _VALID_KERNELS = ("python", "numba")

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.default_top_k < 1:
            raise ConfigurationError(
                f"default_top_k must be >= 1, got {self.default_top_k}"
            )
        if self.serve_backend not in self._VALID_SERVE_BACKENDS:
            raise ConfigurationError(
                f"serve_backend must be one of {self._VALID_SERVE_BACKENDS}, "
                f"got {self.serve_backend!r}"
            )
        if self.serve_workers < 1:
            raise ConfigurationError(
                f"serve_workers must be >= 1, got {self.serve_workers}"
            )
        if not 0 <= self.http_port <= 65535:
            raise ConfigurationError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )
        if self.coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )
        if self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.accuracy_budget is not None and not 0 < self.accuracy_budget < 1:
            raise ConfigurationError(
                f"accuracy_budget must be in (0, 1), got {self.accuracy_budget}"
            )
        if self.approx_walkers is not None:
            if self.accuracy_budget is None:
                raise ConfigurationError(
                    "approx_walkers requires an accuracy_budget (exact mode "
                    "never reduces walkers)"
                )
            if self.approx_walkers < 1:
                raise ConfigurationError(
                    f"approx_walkers must be >= 1, got {self.approx_walkers}"
                )
        if self.approx_steps is not None:
            if self.accuracy_budget is None:
                raise ConfigurationError(
                    "approx_steps requires an accuracy_budget (exact mode "
                    "never shortens walks)"
                )
            if self.approx_steps < 1:
                raise ConfigurationError(
                    f"approx_steps must be >= 1, got {self.approx_steps}"
                )
        if self.kernels not in self._VALID_KERNELS:
            raise ConfigurationError(
                f"kernels must be one of {self._VALID_KERNELS}, "
                f"got {self.kernels!r}"
            )

    def with_(self, **changes: Any) -> "ServiceParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain-dict representation (used by service stats)."""
        return {
            "cache_capacity": self.cache_capacity,
            "max_batch_size": self.max_batch_size,
            "default_top_k": self.default_top_k,
            "serve_backend": self.serve_backend,
            "serve_workers": self.serve_workers,
            "resident_graph": self.resident_graph,
            "http_port": self.http_port,
            "coalesce_window": self.coalesce_window,
            "max_in_flight": self.max_in_flight,
            "accuracy_budget": self.accuracy_budget,
            "approx_walkers": self.approx_walkers,
            "approx_steps": self.approx_steps,
            "kernels": self.kernels,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceParams":
        """Reconstruct parameters from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class UpdateParams:
    """Knobs of the service's live-update path (:mod:`repro.service.updates`).

    Attributes
    ----------
    max_pending_edges:
        Upper bound on edges queued via ``QueryService.add_edges(...,
        defer=True)`` before the queue is drained eagerly; bounds the
        staleness a deferred update can accumulate and the memory the queue
        can hold.  A single deferred batch larger than the bound is applied
        immediately instead of queued.
    max_node_growth:
        Upper bound on how far beyond the current node-id range a single
        inserted edge may point.  Inserting ``(u, v)`` implicitly creates
        every node up to ``max(u, v)``, so one typo or hostile wire line
        (``add 0 999999999``) could otherwise grow the graph — and the
        re-index — without bound.
    snapshot_every:
        Auto-snapshot the index (and linear system) after every N applied
        updates; ``0`` disables automatic snapshots.  Requires
        ``snapshot_dir``.
    snapshot_retain:
        How many snapshot versions to keep on disk (older ones are pruned).
    snapshot_dir:
        Directory of the service's :class:`repro.core.index.SnapshotStore`;
        ``None`` means snapshots are only written when a caller passes an
        explicit directory to ``QueryService.save_snapshot``.
    exact:
        Re-estimate affected rows from exact walk distributions instead of
        Monte-Carlo.  Only feasible for small graphs; used by tests that
        want updates exactly equal to exact rebuilds.
    reachability:
        How update routing computes "which sources does this edge batch
        touch" (and which cache entries die): ``"interval"`` routes through
        the pre-order window labels of
        :mod:`repro.core.reachability`; ``"bfs"`` keeps the per-level
        frontier sweep as the bitwise-identity oracle.  Both return the
        identical affected set — the switch trades routing cost only.
    """

    max_pending_edges: int = 10_000
    max_node_growth: int = 10_000
    snapshot_every: int = 0
    snapshot_retain: int = 5
    snapshot_dir: Optional[str] = None
    exact: bool = False
    reachability: str = "interval"

    def __post_init__(self) -> None:
        if self.max_pending_edges < 1:
            raise ConfigurationError(
                f"max_pending_edges must be >= 1, got {self.max_pending_edges}"
            )
        if self.max_node_growth < 0:
            raise ConfigurationError(
                f"max_node_growth must be >= 0, got {self.max_node_growth}"
            )
        if self.snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.snapshot_retain < 1:
            raise ConfigurationError(
                f"snapshot_retain must be >= 1, got {self.snapshot_retain}"
            )
        if self.snapshot_every > 0 and self.snapshot_dir is None:
            raise ConfigurationError(
                "snapshot_every > 0 requires snapshot_dir to be set"
            )
        if self.reachability not in ("bfs", "interval"):
            raise ConfigurationError(
                f"reachability must be 'bfs' or 'interval', "
                f"got {self.reachability!r}"
            )

    def with_(self, **changes: Any) -> "UpdateParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain-dict representation (used by service stats)."""
        return {
            "max_pending_edges": self.max_pending_edges,
            "max_node_growth": self.max_node_growth,
            "snapshot_every": self.snapshot_every,
            "snapshot_retain": self.snapshot_retain,
            "snapshot_dir": self.snapshot_dir,
            "exact": self.exact,
            "reachability": self.reachability,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UpdateParams":
        """Reconstruct parameters from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class ShardingParams:
    """Shape of a sharded index build / sharded query service.

    Attributes
    ----------
    num_shards:
        ``K`` — number of index shards.  ``1`` means the single-shard path
        (a :class:`~repro.service.QueryService` with no routing layer).
    strategy:
        How nodes are assigned to shards: ``"hash"`` (multiplicative hash of
        the node id — balanced, stable under growth), ``"contiguous"``
        (node-id ranges — best locality for generators that number nodes in
        arrival order) or ``"partitioner"`` (edge-balanced greedy assignment
        computed from the graph's in-degrees; see
        :class:`repro.graph.partition.EdgeBalancedPartitioner`).
    backend:
        Executor backend that builds shards concurrently: ``"serial"``,
        ``"threads"`` or ``"processes"`` (see :mod:`repro.engine.executor`).
        The backend changes only wall-clock, never results: every shard's
        rows come from per-source random streams, so any execution order
        produces a bitwise-identical index.
    max_workers:
        Worker bound for the ``threads`` / ``processes`` backends.
    resident_graph:
        Register the graph as a resident object on the build backend, so
        per-shard row-estimation tasks ship a handle instead of pickling
        the whole graph into every task (``processes`` backend; a no-op
        for ``serial``/``threads``).  Live updates re-register the
        post-update graph — a new residency epoch — before fanning out.
        Disable to restore ship-per-task behaviour; the built index is
        bitwise-identical either way.
    """

    num_shards: int = 1
    strategy: str = "hash"
    backend: str = "serial"
    max_workers: int = 4
    resident_graph: bool = True

    _VALID_STRATEGIES = ("hash", "contiguous", "partitioner")
    _VALID_BACKENDS = ("serial", "threads", "processes")

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.strategy not in self._VALID_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {self._VALID_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.backend not in self._VALID_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {self._VALID_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )

    def with_(self, **changes: Any) -> "ShardingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain-dict representation (used by snapshots and stats)."""
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "backend": self.backend,
            "max_workers": self.max_workers,
            "resident_graph": self.resident_graph,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardingParams":
        """Reconstruct parameters from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class RebalanceParams:
    """Knobs of workload-adaptive shard rebalancing.

    The sharded service keeps per-shard load counters (sources routed,
    scatter/ranking seconds); the rebalance planner
    (:func:`repro.graph.partition.load_balanced_plan` +
    :func:`repro.engine.cost_model.evaluate_rebalance`) turns them into a
    proposed :class:`~repro.graph.partition.ShardPlan` and a
    should-we-migrate decision.  These parameters bound when a proposal is
    adopted — the migration itself never changes answers (bitwise-identical
    across the flip), only the shard placement the scatter fans over.

    Attributes
    ----------
    improvement_threshold:
        Minimum predicted critical-path improvement (current max shard
        load / proposed max shard load) before a migration is worth its
        one-off cost.  ``1.2`` = only migrate for a predicted 20%+ win.
    min_sources:
        Minimum number of observed routed sources before the counters are
        considered representative; below it ``maybe_rebalance`` declines.
    cold_weight:
        Load attributed to every node with no observed traffic, in units
        of one routed source.  Keeps never-queried nodes spread across
        shards instead of piling onto one, and damps overfitting to a
        short observation window.
    check_interval:
        Seconds between automatic rebalance checks when the HTTP tier
        runs with ``--auto-rebalance``.
    """

    improvement_threshold: float = 1.2
    min_sources: int = 16
    cold_weight: float = 1.0
    check_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.improvement_threshold < 1.0:
            raise ConfigurationError(
                f"improvement_threshold must be >= 1.0, "
                f"got {self.improvement_threshold}"
            )
        if self.min_sources < 0:
            raise ConfigurationError(
                f"min_sources must be >= 0, got {self.min_sources}"
            )
        if self.cold_weight < 0:
            raise ConfigurationError(
                f"cold_weight must be >= 0, got {self.cold_weight}"
            )
        if self.check_interval <= 0:
            raise ConfigurationError(
                f"check_interval must be > 0, got {self.check_interval}"
            )

    def with_(self, **changes: Any) -> "RebalanceParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain-dict representation (used by service stats)."""
        return {
            "improvement_threshold": self.improvement_threshold,
            "min_sources": self.min_sources,
            "cold_weight": self.cold_weight,
            "check_interval": self.check_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RebalanceParams":
        """Reconstruct parameters from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class ClusterSpec:
    """Description of a (simulated) cluster for the engine cost model.

    The engine always *executes* locally; the spec is used to account the
    wall-clock a job would take on a cluster of this shape (number of
    machines and cores bounds parallelism, per-executor memory bounds the
    broadcasting model, network bandwidth prices shuffles and broadcasts).

    Attributes
    ----------
    machines:
        Number of worker machines.
    cores_per_machine:
        CPU cores available to executors on each machine.
    memory_per_machine_gb:
        Executor memory per machine, in gigabytes.
    disk_per_machine_tb:
        Local disk per machine, in terabytes (used only for spill checks).
    network_gbps:
        Point-to-point network bandwidth in gigabits per second.
    """

    machines: int = 1
    cores_per_machine: int = 4
    memory_per_machine_gb: float = 8.0
    disk_per_machine_tb: float = 0.5
    network_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ConfigurationError(f"machines must be >= 1, got {self.machines}")
        if self.cores_per_machine < 1:
            raise ConfigurationError(
                f"cores_per_machine must be >= 1, got {self.cores_per_machine}"
            )
        if self.memory_per_machine_gb <= 0:
            raise ConfigurationError(
                f"memory_per_machine_gb must be > 0, got {self.memory_per_machine_gb}"
            )
        if self.disk_per_machine_tb <= 0:
            raise ConfigurationError(
                f"disk_per_machine_tb must be > 0, got {self.disk_per_machine_tb}"
            )
        if self.network_gbps <= 0:
            raise ConfigurationError(
                f"network_gbps must be > 0, got {self.network_gbps}"
            )

    @property
    def total_cores(self) -> int:
        """Total number of executor cores in the cluster."""
        return self.machines * self.cores_per_machine

    @property
    def total_memory_gb(self) -> float:
        """Total executor memory across the cluster, in gigabytes."""
        return self.machines * self.memory_per_machine_gb

    @property
    def memory_per_machine_bytes(self) -> float:
        """Executor memory per machine, in bytes."""
        return self.memory_per_machine_gb * 1e9

    @classmethod
    def paper_cluster(cls) -> "ClusterSpec":
        """The testbed used in the paper: 10 x (16 cores, 377 GB, 20 TB)."""
        return cls(
            machines=10,
            cores_per_machine=16,
            memory_per_machine_gb=377.0,
            disk_per_machine_tb=20.0,
            network_gbps=10.0,
        )

    @classmethod
    def local(cls, cores: int = 4, memory_gb: float = 8.0) -> "ClusterSpec":
        """A single-machine spec matching a developer laptop."""
        return cls(
            machines=1,
            cores_per_machine=cores,
            memory_per_machine_gb=memory_gb,
            disk_per_machine_tb=0.5,
            network_gbps=10.0,
        )

    def with_(self, **changes: Any) -> "ClusterSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ExecutionOptions:
    """Runtime knobs shared by the execution models.

    Attributes
    ----------
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"`` — how engine tasks are
        physically executed on the local machine.
    num_partitions:
        Default number of partitions for RDDs created from graph data.
        ``None`` lets the engine pick ``total_cores * 2``.
    simulate_cluster:
        When true, jobs also produce a simulated wall-clock estimate for
        :attr:`cluster` via the cost model (used by the benchmark harness).
    cluster:
        The cluster the cost model should simulate.
    """

    backend: str = "serial"
    num_partitions: Optional[int] = None
    simulate_cluster: bool = False
    cluster: ClusterSpec = field(default_factory=ClusterSpec)

    _VALID_BACKENDS = ("serial", "threads", "processes")

    def __post_init__(self) -> None:
        if self.backend not in self._VALID_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {self._VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.num_partitions is not None and self.num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1 or None, got {self.num_partitions}"
            )
