"""Pytest root conftest.

Ensures the in-repo sources are importable even when the package has not
been pip-installed (the benchmark harness and CI use ``pip install -e .``,
but a plain checkout should also run ``pytest`` out of the box).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401  (already installed)
    except ImportError:
        sys.path.insert(0, str(_SRC))
