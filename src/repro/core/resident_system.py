"""The serving working set as a residency-exportable view.

PR 5 taught the executor's resident registry to broadcast the *graph* into
shared memory (:meth:`repro.graph.digraph.DiGraph.resident_export`); this
module extends the protocol to the rest of the state the online phase
repeatedly touches — the maintained linear system's rows, the solved
diagonal, and the plan's node-to-shard assignment.  A
:class:`ResidentSystem` is a thin immutable *view* over arrays owned by the
walker/service; it exists so the identity-keyed registry
(:meth:`repro.engine.executor.ExecutorBackend.ensure_resident`) has one
object whose lifetime tracks the serving lineage:

* the owner caches the view while the underlying ``system`` / ``diagonal``
  / ``assignment`` objects stay the same, so steady-state scatters reuse
  one registration;
* any lineage event — ``add_edges`` splicing a new system, a ``with_plan``
  migration clone, a rebalance flip, a snapshot restore — produces new
  underlying objects, the owner builds a **new view**, and the registry
  bumps the residency epoch exactly like a graph swap.

Export layout: the diagonal is one float64 array, the system is its three
CSR buffers (``data``, ``indices``, ``indptr``) plus the shape in the meta
dict, the assignment is one integer array; each piece is optional (a
cold-started service has a diagonal but no system yet).  Restoration is
zero-copy: the worker-side :meth:`ResidentSystem.resident_restore` wraps
the shared-memory views in a ``scipy.sparse.csr_matrix`` without copying,
so every per-task payload that used to carry index rows, diagonals or
score slices shrinks to a handle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse


class ResidentSystem:
    """Immutable residency view over the maintained system + diagonal.

    Parameters
    ----------
    diagonal:
        The solved correction diagonal (``DiagonalIndex.diagonal``), or
        None when the view only carries build-side state.
    system:
        The maintained linear system (``IncrementalCloudWalker.system``)
        as a CSR matrix, or None when the service serves a pre-built index
        without update state.
    assignment:
        The plan's per-node shard assignment (``ShardPlan.assign``), or
        None.  Shipped with the system so migration slice tasks need only
        a handle plus a shard id.
    """

    __slots__ = ("diagonal", "system", "assignment")

    def __init__(
        self,
        diagonal: Optional[np.ndarray] = None,
        system: Optional[sparse.csr_matrix] = None,
        assignment: Optional[np.ndarray] = None,
    ) -> None:
        self.diagonal = diagonal
        self.system = system
        self.assignment = assignment

    # ------------------------------------------------------------------ #
    # Residency protocol (mirrors DiGraph.resident_export/resident_restore)
    # ------------------------------------------------------------------ #
    def resident_export(self) -> Tuple[Dict[str, Any], List[np.ndarray]]:
        """Export as ``(meta, arrays)`` for shared-memory residency.

        Array order is fixed — diagonal, then the system's CSR buffers,
        then the assignment — with presence flags (and the system shape)
        in the meta dict, so :meth:`resident_restore` can slot the
        worker-side views back without ambiguity.
        """
        meta: Dict[str, Any] = {
            "has_diagonal": self.diagonal is not None,
            "system_shape": (tuple(int(d) for d in self.system.shape)
                             if self.system is not None else None),
            "has_assignment": self.assignment is not None,
        }
        arrays: List[np.ndarray] = []
        if self.diagonal is not None:
            arrays.append(self.diagonal)
        if self.system is not None:
            arrays.extend([self.system.data, self.system.indices,
                           self.system.indptr])
        if self.assignment is not None:
            arrays.append(self.assignment)
        return meta, arrays

    @classmethod
    def resident_restore(cls, meta: Dict[str, Any],
                         arrays: List[np.ndarray]) -> "ResidentSystem":
        """Rebuild the view around exported buffers **without copying**.

        The CSR matrix is constructed directly from the shared-memory
        views (``(data, indices, indptr)`` adoption, no canonicalisation
        pass), so the restored system is byte-for-byte the exporter's —
        the property every bitwise-identity gate downstream rests on.
        """
        cursor = 0
        diagonal: Optional[np.ndarray] = None
        system: Optional[sparse.csr_matrix] = None
        assignment: Optional[np.ndarray] = None
        if meta["has_diagonal"]:
            diagonal = arrays[cursor]
            cursor += 1
        if meta["system_shape"] is not None:
            data, indices, indptr = arrays[cursor:cursor + 3]
            cursor += 3
            system = sparse.csr_matrix(
                (data, indices, indptr), shape=meta["system_shape"], copy=False
            )
        if meta["has_assignment"]:
            assignment = arrays[cursor]
        return cls(diagonal=diagonal, system=system, assignment=assignment)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Footprint of the exported arrays — one copy per *pool*, not per
        worker: process workers map the single shared segment."""
        total = 0
        if self.diagonal is not None:
            total += int(self.diagonal.nbytes)
        if self.system is not None:
            total += int(self.system.data.nbytes
                         + self.system.indices.nbytes
                         + self.system.indptr.nbytes)
        if self.assignment is not None:
            total += int(self.assignment.nbytes)
        return total

    def __repr__(self) -> str:
        parts = []
        if self.diagonal is not None:
            parts.append(f"diagonal[{len(self.diagonal)}]")
        if self.system is not None:
            parts.append(f"system{self.system.shape}")
        if self.assignment is not None:
            parts.append(f"assignment[{len(self.assignment)}]")
        return f"ResidentSystem({', '.join(parts) or 'empty'})"
