"""Online query serving for CloudWalker.

This package turns the one-shot library calls of :mod:`repro.core` into a
serving layer fit for sustained query traffic:

:mod:`repro.service.cache`
    An LRU cache of per-source walk distributions keyed on
    ``(node, steps, walkers, seed)`` — the unit of reuse across queries.
:mod:`repro.service.batching`
    Query dataclasses plus the batch planner that deduplicates sources and
    groups them for vectorised multi-source simulation.
:mod:`repro.service.updates`
    :class:`GraphMutator`, the live-update path: a bounded queue of edge
    insertions drained into incremental re-indexes whose affected-source
    sets drive targeted cache invalidation.
:mod:`repro.service.service`
    :class:`QueryService`, tying index persistence, planning, simulation,
    caching, live updates and versioned snapshots together behind
    single-query and batch APIs.
:mod:`repro.service.sharded`
    :class:`ShardedQueryService`, the scatter-gather deployment of the
    same service: per-shard caches, index rows and versions behind a
    :class:`~repro.graph.partition.ShardPlan`, with answers
    bitwise-identical to the single-shard path for any shard count.
:mod:`repro.service.coalesce`
    :class:`BatchCoalescer`, cross-connection batch coalescing: concurrent
    submissions are collected for a short window and executed as one
    planned batch, with admission control bounding in-flight work.
:mod:`repro.service.http`
    :class:`HttpServiceServer`, the stdlib-only asyncio HTTP/JSON tier:
    coalesced queries, backpressure (429/503), overlapped update drains
    and a graceful SIGTERM drain over the service ``close()`` lifecycle.
:mod:`repro.service.scenarios`
    The scenario harness: a JSONL traffic-trace model, synthetic workload
    generators (uniform, Zipf, bursty, update storms, multi-tenant) and
    replay drivers that run a trace against the in-process or HTTP tier
    and emit normalized per-scenario records — including the realized
    error of the approximate serving mode
    (``ServiceParams.accuracy_budget``).
"""

from repro.service.batching import (
    BatchPlan,
    PairQuery,
    Query,
    SourceQuery,
    TopKQuery,
    chunk_sources,
    parse_edge,
    parse_query,
    plan_batch,
    required_sources,
)
from repro.service.cache import CacheKey, CacheStats, WalkDistributionCache
from repro.service.coalesce import BatchCoalescer
from repro.service.http import HttpServiceServer
from repro.service.scenarios import (
    TRACE_GENERATORS,
    ReplayOptions,
    ScenarioResult,
    Trace,
    TraceEvent,
    generate_trace,
    parse_trace_line,
    read_trace,
    replay_trace,
    replay_trace_http,
    trace_from_lines,
    write_records,
    write_trace,
)
from repro.service.service import BatchAnswers, QueryService
from repro.service.sharded import ShardedQueryService
from repro.service.updates import GraphMutator, MutationResult

__all__ = [
    "BatchAnswers",
    "BatchCoalescer",
    "BatchPlan",
    "CacheKey",
    "CacheStats",
    "GraphMutator",
    "HttpServiceServer",
    "MutationResult",
    "PairQuery",
    "Query",
    "QueryService",
    "ReplayOptions",
    "ScenarioResult",
    "ShardedQueryService",
    "SourceQuery",
    "TopKQuery",
    "TRACE_GENERATORS",
    "Trace",
    "TraceEvent",
    "WalkDistributionCache",
    "chunk_sources",
    "generate_trace",
    "parse_edge",
    "parse_query",
    "parse_trace_line",
    "plan_batch",
    "read_trace",
    "replay_trace",
    "replay_trace_http",
    "required_sources",
    "trace_from_lines",
    "write_records",
    "write_trace",
]
