"""Incremental index maintenance under edge insertions.

The paper builds its index for a static snapshot; rebuilding from scratch
after every graph change would waste most of the Monte-Carlo work, because an
edge insertion ``u -> v`` only changes the reverse-walk distributions of the
nodes that can reach the walk through ``v`` — i.e. the nodes reachable from
``v`` along at most ``T`` forward edges.  This module implements that
observation as an incremental maintainer (a natural extension of the paper's
system; listed as such in ``docs/DESIGN.md``):

1. keep the assembled linear system ``A`` from the last build;
2. on ``add_edges``, compute the affected source set by a bounded forward
   BFS from the new edges' heads;
3. re-estimate only the affected rows of ``A`` (Monte-Carlo, same budget as
   the original build);
4. warm-start the Jacobi solve from the previous diagonal.

For localized updates this costs a small fraction of a full rebuild while
producing an index that is statistically indistinguishable from one built
from scratch.  With ``stream_per_source=True`` (the query service's
configuration) the guarantee is stronger: every row is estimated from its
own ``(seed, source)`` random stream, so the updated index is
*bitwise-identical* to one built from scratch on the updated graph — see
``docs/architecture.md`` for the full versioning contract.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.config import SimRankParams
from repro.core import linear_system, reachability, walks
from repro.core.index import BuildInfo, DiagonalIndex
from repro.core.reachability import ReachabilityIndex
from repro.core.jacobi import jacobi_solve
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph


def affected_sources(graph: DiGraph, changed_heads: Iterable[int], steps: int,
                     mode: str = "bfs") -> Set[int]:
    """Nodes whose rows ``a_i`` may change when the in-links of
    ``changed_heads`` change.

    A reverse walk from source ``i`` visits ``v`` within ``T`` steps exactly
    when there is a forward path ``v -> ... -> i`` of length at most ``T``,
    so the affected set is the forward BFS ball of radius ``T`` around the
    changed heads (including the heads themselves).  ``mode`` selects the
    routing implementation (``"bfs"`` frontier sweep or ``"interval"``
    window labels — see :mod:`repro.core.reachability`); both return the
    identical set, and the walker and the query service's cache
    invalidation share this entry point so "which rows to re-estimate" and
    "which cache entries to drop" can never disagree.
    """
    return reachability.reachable_set(graph, changed_heads, steps, mode=mode)


class IncrementalCloudWalker:
    """Maintains a CloudWalker index across edge insertions.

    Parameters
    ----------
    graph:
        Initial graph.
    params:
        Algorithmic parameters (shared by the initial build and all updates).
    exact:
        Use exact walk distributions instead of Monte-Carlo (small graphs;
        makes incremental results exactly equal to full rebuilds, which the
        tests exploit).
    stream_per_source:
        Estimate every row from its own ``(seed, source)`` random stream
        (:func:`repro.core.linear_system.build_rows_streamed`) instead of
        one shared stream per update.  Together with ``warm_start=False``
        this makes incremental updates bitwise-identical to full rebuilds
        on the updated graph — the mode the query service runs in.
    warm_start:
        Start the Jacobi solve of an update from the previous diagonal
        (faster convergence) instead of the cold-start guess ``1 - c``
        a fresh build uses.  Disable for bitwise reproducibility.
    reachability:
        Update-routing mode: ``"interval"`` (default) answers "which rows
        does this batch touch" from carried pre-order window labels;
        ``"bfs"`` keeps the frontier-sweep oracle.  The affected sets are
        identical either way.
    """

    def __init__(self, graph: DiGraph, params: Optional[SimRankParams] = None,
                 exact: bool = False, stream_per_source: bool = False,
                 warm_start: bool = True,
                 reachability: str = "interval") -> None:
        self.graph = graph
        self.params = params or SimRankParams.paper_defaults()
        self.exact = exact
        self.stream_per_source = stream_per_source
        self.warm_start = warm_start
        self.reachability = reachability
        self._routing = ReachabilityIndex(reachability)
        self._routing.prepare(graph)
        self._system: Optional[sparse.csr_matrix] = None
        self.index: Optional[DiagonalIndex] = None
        self._update_count = 0

    # ------------------------------------------------------------------ #
    def build(self) -> DiagonalIndex:
        """Initial full build (also callable to force a rebuild)."""
        start = time.perf_counter()
        self._system = self._build_rows(self.graph, range(self.graph.n_nodes)).tolil().tocsr()
        self.index = self._solve(self.graph, self._system,
                                 initial=None, seconds_so_far=time.perf_counter() - start,
                                 update_kind="full-build", affected=self.graph.n_nodes)
        return self.index

    def attach(self, index: DiagonalIndex,
               system: Optional[sparse.csr_matrix] = None) -> None:
        """Adopt an existing index (and optionally its linear system).

        Lets a maintainer take over an index that was built elsewhere — a
        cold-started query service, or a snapshot reloaded from disk — so
        :meth:`add_edges` can update it incrementally.  If ``system`` is not
        given (the index file does not carry it), the linear system for the
        *current* graph is estimated now; this one-time cost is comparable
        to a rebuild, which is exactly why snapshots persist the system
        alongside the diagonal (see
        :meth:`repro.core.index.SnapshotStore.save_snapshot`).
        """
        index.validate_for(self.graph)
        if system is not None:
            if system.shape != (self.graph.n_nodes, self.graph.n_nodes):
                raise ConfigurationError(
                    f"system has shape {system.shape} but the graph has "
                    f"{self.graph.n_nodes} nodes"
                )
            self._system = system.tocsr()
        else:
            self._system = self._build_rows(
                self.graph, range(self.graph.n_nodes)
            ).tocsr()
        self.index = index

    @property
    def system(self) -> Optional[sparse.csr_matrix]:
        """The maintained linear system ``A`` (None before build/attach)."""
        return self._system

    def _build_rows(self, graph: DiGraph, sources: Iterable[int]) -> sparse.csr_matrix:
        sources = list(sources)
        if self.exact:
            full = linear_system.build_exact_system(graph, self.params)
            mask = np.zeros(graph.n_nodes, dtype=bool)
            mask[sources] = True
            keep = sparse.diags(mask.astype(np.float64))
            return (keep @ full).tocsr()
        if self.stream_per_source:
            rows, cols, values = linear_system.build_rows_streamed(
                graph, sources, self.params
            )
        else:
            rng = walks.make_rng(self.params.seed, stream=50_000 + self._update_count)
            rows, cols, values = linear_system.build_rows(
                graph, sources, self.params, rng=rng
            )
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(graph.n_nodes, graph.n_nodes)
        )

    def _solve(self, graph: DiGraph, system: sparse.csr_matrix,
               initial: Optional[np.ndarray], seconds_so_far: float,
               update_kind: str, affected: int) -> DiagonalIndex:
        rhs = np.ones(graph.n_nodes, dtype=np.float64)
        start = time.perf_counter()
        if graph.n_nodes == 0:
            x = np.zeros(0, dtype=np.float64)
            residual = float("nan")
        else:
            guess = (
                initial if initial is not None
                else np.full(graph.n_nodes, 1.0 - self.params.c)
            )
            solution = jacobi_solve(
                system, rhs, iterations=self.params.jacobi_iterations, initial=guess
            )
            x = solution.x
            residual = solution.final_residual
        solve_seconds = time.perf_counter() - start
        build_info = BuildInfo(
            execution_model="incremental",
            monte_carlo_seconds=seconds_so_far,
            solve_seconds=solve_seconds,
            total_seconds=seconds_so_far + solve_seconds,
            jacobi_residual=residual,
            system_nnz=int(system.nnz),
            extras={"update_kind": update_kind, "affected_rows": affected},
        )
        return DiagonalIndex(
            diagonal=x, params=self.params, graph_name=graph.name,
            n_nodes=graph.n_nodes, n_edges=graph.n_edges, build_info=build_info,
        )

    # ------------------------------------------------------------------ #
    def add_edges(self, new_edges: Sequence[Tuple[int, int]]) -> Dict[str, object]:
        """Insert edges and update the index incrementally.

        Returns a summary dict with the number of affected rows, the
        affected source set itself (``"affected"``, which the query service
        turns into its cache-invalidation set) and the update cost; the new
        graph and index are available as :attr:`graph` / :attr:`index`.
        """
        if self.index is None or self._system is None:
            raise ConfigurationError("call build() or attach() before add_edges()")
        if not new_edges:
            return {"affected_rows": 0, "update_seconds": 0.0, "new_nodes": 0,
                    "affected": frozenset(), "routing_seconds": 0.0,
                    "reachability": self.reachability}

        start = time.perf_counter()
        old_n = self.graph.n_nodes
        max_endpoint = max(max(int(u), int(v)) for u, v in new_edges)
        new_n = max(old_n, max_endpoint + 1)
        combined_edges = np.vstack([
            self.graph.edge_array(),
            np.asarray(list(new_edges), dtype=np.int64).reshape(-1, 2),
        ])
        new_graph = DiGraph(new_n, combined_edges, name=self.graph.name)

        self._update_count += 1
        heads = {int(v) for _u, v in new_edges}
        new_node_ids = set(range(old_n, new_n))
        routing_start = time.perf_counter()
        self._routing.advance(self.graph, new_graph, list(new_edges))
        affected = self._routing.query(new_graph, heads,
                                       self.params.walk_steps)
        routing_seconds = time.perf_counter() - routing_start
        affected |= new_node_ids

        # Re-estimate the affected rows on the new graph.
        fresh_rows = self._build_rows(new_graph, sorted(affected))

        # Splice: keep unaffected rows of the old system, take affected rows
        # from the fresh estimate.  (Row dimensions may have grown.)
        old_system = self._system
        if new_n > old_n:
            old_system = sparse.csr_matrix(
                (old_system.data, old_system.indices, old_system.indptr),
                shape=(old_n, new_n),
            )
            old_system = sparse.vstack(
                [old_system, sparse.csr_matrix((new_n - old_n, new_n))]
            ).tocsr()
        keep_mask = np.ones(new_n, dtype=np.float64)
        keep_mask[sorted(affected)] = 0.0
        keep = sparse.diags(keep_mask)
        spliced = (keep @ old_system + fresh_rows).tocsr()
        # Zeroed-out affected cells survive the splice as explicit zeros and
        # the splice arithmetic leaves column indices unsorted; restoring the
        # canonical CSR a from-scratch build produces makes the solver's
        # summation order — and hence the solved diagonal — bitwise
        # reproducible.
        spliced.eliminate_zeros()
        spliced.sort_indices()
        self._system = spliced

        if self.warm_start:
            # Warm-start the solve from the previous diagonal.
            initial: Optional[np.ndarray] = np.full(
                new_n, 1.0 - self.params.c, dtype=np.float64
            )
            initial[:old_n] = self.index.diagonal
        else:
            # Cold start, exactly like build(): same guess -> same iterates.
            initial = None
        monte_carlo_seconds = time.perf_counter() - start
        self.graph = new_graph
        self.index = self._solve(
            new_graph, self._system, initial=initial,
            seconds_so_far=monte_carlo_seconds,
            update_kind="incremental-add-edges", affected=len(affected),
        )
        return {
            "affected_rows": len(affected),
            "affected_fraction": len(affected) / max(new_n, 1),
            "affected": frozenset(affected),
            "new_nodes": new_n - old_n,
            "update_seconds": time.perf_counter() - start,
            "routing_seconds": routing_seconds,
            "reachability": self.reachability,
        }

    # ------------------------------------------------------------------ #
    def full_rebuild(self) -> DiagonalIndex:
        """Rebuild from scratch on the current graph (for cost comparisons)."""
        return self.build()
