"""The docs/ tree exists, is complete, and cites only refs that resolve.

Three layers of honesty checks:

* required documents exist and still cover the topics source docstrings
  cite them for;
* every path and ``module.symbol`` reference in the docs resolves
  (``scripts/check_docs.py``, also run standalone);
* every public symbol of the serving/persistence API surface carries a
  docstring.
"""

import importlib
import importlib.util
import inspect
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"
CHECKER = REPO_ROOT / "scripts" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsTree:
    def test_required_documents_exist(self):
        assert (DOCS_DIR / "DESIGN.md").is_file()
        assert (DOCS_DIR / "architecture.md").is_file()
        assert (REPO_ROOT / "README.md").is_file()

    def test_design_md_covers_contracted_topics(self):
        # Source docstrings cite docs/DESIGN.md for these topics; keep the
        # citations honest.
        text = (DOCS_DIR / "DESIGN.md").read_text(encoding="utf-8")
        for needle in ("ablat", "incremental", "index_walkers", "walk_steps",
                       "query_walkers", "jacobi", "Per-experiment index",
                       "affected-source"):
            assert needle in text, f"docs/DESIGN.md no longer covers {needle!r}"

    def test_architecture_md_covers_contracted_topics(self):
        text = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
        for needle in ("graph", "core", "engine", "service", "cli",
                       "index_version", "CacheKey", "invalidat", "snapshot"):
            assert needle in text, f"docs/architecture.md no longer covers {needle!r}"

    def test_readme_documents_live_updates(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "Updating a live index" in text
        assert "add_edges" in text
        assert "index_version" in text

    def test_sharding_and_operations_docs_exist_and_are_linked(self):
        assert (DOCS_DIR / "sharding.md").is_file()
        assert (DOCS_DIR / "operations.md").is_file()
        architecture = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for needle in ("sharding.md", "operations.md"):
            assert needle in architecture, f"architecture.md must link {needle}"
            assert needle in readme, f"README.md must link {needle}"

    def test_sharding_md_covers_contracted_topics(self):
        text = (DOCS_DIR / "sharding.md").read_text(encoding="utf-8")
        for needle in ("ShardPlan", "bitwise", "scatter-gather", "merge",
                       "touched shard", "shard_plan.json", "critical path",
                       "Rebuild"):
            assert needle in text, f"docs/sharding.md no longer covers {needle!r}"

    def test_operations_md_covers_contracted_topics(self):
        text = (DOCS_DIR / "operations.md").read_text(encoding="utf-8")
        for needle in ("snapshot", "max_pending_edges", "cache_capacity",
                       "cache_memory_bytes", "from_snapshot", "monitor"):
            assert needle in text, f"docs/operations.md no longer covers {needle!r}"

    def test_readme_cli_help_block_is_current(self):
        """The README's regenerated help block must list every subcommand."""
        from repro.cli import build_parser

        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        subcommands = build_parser()._subparsers._group_actions[0].choices
        for name in subcommands:
            assert name in text, (
                f"README CLI help block is stale: subcommand {name!r} missing "
                "(regenerate with `python -m repro --help`)"
            )


class TestDocLinks:
    def test_every_cited_path_resolves(self):
        checker = _load_checker()
        problems = checker.check_docs()
        assert problems == [], "\n".join(problems)

    def test_checker_detects_dangling_reference(self, tmp_path, monkeypatch):
        # The checker itself must actually catch rot, not just pass.
        checker = _load_checker()
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "see [gone](docs/missing.md) and `src/not/there.py`\n"
        )
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        problems = checker.check_docs()
        assert len(problems) == 2

    def test_checker_cli_exit_codes(self):
        completed = subprocess.run(
            [sys.executable, str(CHECKER)], capture_output=True, text=True,
            cwd=str(REPO_ROOT),
        )
        assert completed.returncode == 0, completed.stderr
        assert "docs OK" in completed.stdout

    def test_checker_detects_broken_symbol_reference(self):
        """The symbol resolver must catch renamed attributes, not just paths."""
        checker = _load_checker()
        table = checker._public_symbol_table()
        assert checker._resolve_symbol("repro.service.QueryService.run_batch",
                                       table) is None
        assert checker._resolve_symbol("QueryService.run_batch", table) is None
        assert checker._resolve_symbol("ServiceParams.cache_capacity",
                                       table) is None
        # Dataclass fields without defaults still count as attributes.
        assert checker._resolve_symbol("DiagonalIndex.diagonal", table) is None
        # Foreign roots are skipped, never flagged.
        assert checker._resolve_symbol("np.ndarray", table) is None
        # Renamed/missing attributes are flagged on both root kinds.
        assert checker._resolve_symbol("repro.service.QueryService.run_batsch",
                                       table) is not None
        assert checker._resolve_symbol("QueryService.run_batsch", table) is not None
        assert checker._resolve_symbol("repro.core.gone_module.build", table) \
            is not None


class TestPublicDocstrings:
    """Every public symbol of the serving/persistence surface is documented."""

    MODULES = [
        "repro.service", "repro.service.service", "repro.service.sharded",
        "repro.service.batching", "repro.service.cache", "repro.service.updates",
        "repro.service.http", "repro.service.coalesce",
        "repro.service.scenarios",
        "repro.core.index", "repro.core.sharding", "repro.core.queries",
        "repro.graph.partition",
    ]

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_symbols_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        if not inspect.getdoc(module):
            missing.append(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, (classmethod, staticmethod)):
                        func = member.__func__
                    elif isinstance(member, property):
                        func = member.fget
                    if func is not None and not inspect.getdoc(func):
                        missing.append(f"{module_name}.{name}.{member_name}")
        assert missing == [], (
            "public symbols without docstrings: " + ", ".join(missing)
        )
