"""Graph statistics used by the dataset table and the cluster cost model.

The functions here are deliberately cheap (linear in nodes + edges) because
the benchmark harness calls them for every dataset in every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph.

    ``log_avg_in_degree`` is the ``log d`` factor that appears in the paper's
    MCSS / MCAP complexity bounds (O(T^2 R log d)).
    """

    name: str
    n_nodes: int
    n_edges: int
    avg_in_degree: float
    max_in_degree: int
    zero_in_degree_fraction: float
    avg_out_degree: float
    max_out_degree: int
    memory_bytes: int
    edge_list_bytes: int

    @property
    def log_avg_in_degree(self) -> float:
        """Natural log of the average in-degree, floored at 1.0."""
        return float(np.log(max(self.avg_in_degree, np.e)))

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view used by report formatters."""
        return {
            "name": self.name,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "avg_in_degree": self.avg_in_degree,
            "max_in_degree": self.max_in_degree,
            "zero_in_degree_fraction": self.zero_in_degree_fraction,
            "avg_out_degree": self.avg_out_degree,
            "max_out_degree": self.max_out_degree,
            "memory_bytes": self.memory_bytes,
            "edge_list_bytes": self.edge_list_bytes,
        }


def compute_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    in_degrees = graph.in_degrees()
    out_degrees = graph.out_degrees()
    n = graph.n_nodes
    return GraphStats(
        name=graph.name,
        n_nodes=n,
        n_edges=graph.n_edges,
        avg_in_degree=float(in_degrees.mean()) if n else 0.0,
        max_in_degree=int(in_degrees.max()) if n else 0,
        zero_in_degree_fraction=float((in_degrees == 0).mean()) if n else 0.0,
        avg_out_degree=float(out_degrees.mean()) if n else 0.0,
        max_out_degree=int(out_degrees.max()) if n else 0,
        memory_bytes=graph.memory_bytes(),
        edge_list_bytes=graph.edge_list_bytes(),
    )


def in_degree_histogram(graph: DiGraph) -> Dict[int, int]:
    """Return {in_degree: count} for all observed in-degrees."""
    degrees = graph.in_degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def degree_power_law_exponent(graph: DiGraph) -> float:
    """Crude maximum-likelihood estimate of the in-degree power-law exponent.

    Uses the Hill estimator over degrees >= 2.  Returns ``nan`` for graphs
    with fewer than 10 such nodes (the estimate would be meaningless).
    """
    degrees = graph.in_degrees().astype(np.float64)
    tail = degrees[degrees >= 2.0]
    if tail.size < 10:
        return float("nan")
    d_min = 2.0
    return float(1.0 + tail.size / np.sum(np.log(tail / (d_min - 0.5))))
