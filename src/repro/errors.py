"""Exception hierarchy for the CloudWalker reproduction.

All exceptions raised deliberately by this package derive from
:class:`CloudWalkerError` so callers can catch package-level failures with a
single ``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class CloudWalkerError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(CloudWalkerError):
    """Raised when parameters are inconsistent or out of their valid range."""


class GraphFormatError(CloudWalkerError):
    """Raised when an edge list / graph file cannot be parsed."""


class WireFormatError(CloudWalkerError, ValueError):
    """Raised when a wire line (CLI or HTTP) cannot be parsed.

    Covers the textual protocols shared by the ``serve`` REPL, the batch
    files and the HTTP/JSON tier: query lines (``pair i j``, ``source i``,
    ``topk i [k]``) and edge lines (``<src> <dst>``).  The message always
    names the offending input verbatim, so a client reading a 400 response
    (or an operator reading the REPL echo) can see *which* line was bad,
    not just why.  Subclasses :class:`ValueError` so protocol code can
    catch wire-validation failures with a plain ``except ValueError``
    while package-level ``except CloudWalkerError`` handlers keep working.
    """


class ServiceOverloadedError(CloudWalkerError):
    """Raised when the serving tier refuses work to protect itself.

    The HTTP tier's admission control maps this to backpressure status
    codes: a query submitted past ``ServiceParams.max_in_flight`` (503 —
    the serve pool is saturated) or an update past the pending-edge bound
    (429 — the update queue is saturated).  Clients should retry with
    backoff; nothing about the service is broken.
    """

    def __init__(self, what: str, current: int, bound: int) -> None:
        super().__init__(
            f"{what}: {current} in flight >= bound {bound}; retry with backoff"
        )
        self.what = what
        self.current = current
        self.bound = bound


class NodeNotFoundError(CloudWalkerError, KeyError):
    """Raised when a query references a node id outside the graph."""

    def __init__(self, node: int, n_nodes: int) -> None:
        super().__init__(
            f"node {node!r} is not a valid node id (graph has {n_nodes} nodes, "
            f"valid ids are 0..{n_nodes - 1})"
        )
        self.node = node
        self.n_nodes = n_nodes


class IndexNotBuiltError(CloudWalkerError):
    """Raised when an online query is issued before the offline index exists."""

    def __init__(self, operation: str = "query") -> None:
        super().__init__(
            f"cannot run {operation}: the diagonal index has not been built yet; "
            "call build_index() first"
        )
        self.operation = operation


class EngineError(CloudWalkerError):
    """Base class for failures inside the cluster-computing engine."""


class JobExecutionError(EngineError):
    """Raised when a task inside an engine job fails.

    The original exception is chained (``raise ... from exc``) and also kept
    on :attr:`cause` for programmatic inspection.
    """

    def __init__(self, stage: str, partition: int, cause: BaseException) -> None:
        super().__init__(
            f"task failed in stage {stage!r}, partition {partition}: {cause!r}"
        )
        self.stage = stage
        self.partition = partition
        self.cause = cause


class ShuffleError(EngineError):
    """Raised when shuffle data is missing or inconsistent."""


class CapacityExceededError(EngineError):
    """Raised by the cluster cost model when a plan does not fit the cluster.

    The broadcasting execution model requires the whole graph to fit in a
    single executor's memory; when it does not, this error is raised so the
    caller can fall back to the RDD model (mirroring the paper's motivation
    for having both).
    """

    def __init__(self, required_bytes: float, available_bytes: float, what: str) -> None:
        super().__init__(
            f"{what} requires {required_bytes / 1e9:.2f} GB but only "
            f"{available_bytes / 1e9:.2f} GB are available per executor"
        )
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes
        self.what = what


class SolverError(CloudWalkerError):
    """Raised when the linear-system solver cannot make progress."""


class DatasetNotFoundError(CloudWalkerError, KeyError):
    """Raised when an unknown dataset name is requested from the registry."""

    def __init__(self, name: str, available: list[str]) -> None:
        super().__init__(
            f"unknown dataset {name!r}; available datasets: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = list(available)
