"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder


class TestGraphBuilder:
    def test_basic_build(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "carol")
        graph = builder.build(name="tiny")
        assert graph.n_nodes == 3
        assert graph.n_edges == 2
        assert graph.name == "tiny"

    def test_labels_ordered_by_first_appearance(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y")
        builder.add_edge("y", "z")
        assert builder.labels() == ["x", "y", "z"]
        assert builder.label_to_id() == {"x": 0, "y": 1, "z": 2}

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(1, 2), (2, 3), (3, 1)])
        assert builder.n_nodes == 3
        assert builder.n_edges == 3

    def test_isolated_node(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.n_nodes == 3
        assert graph.in_degree(0) == 0
        assert graph.out_degree(0) == 0

    def test_n_nodes_override(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        graph = builder.build(n_nodes=5)
        assert graph.n_nodes == 5

    def test_n_nodes_override_too_small(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2)])
        with pytest.raises(GraphFormatError):
            builder.build(n_nodes=2)

    def test_repeated_labels_reuse_ids(self):
        builder = GraphBuilder()
        first = builder.node_id("a")
        second = builder.node_id("a")
        assert first == second

    def test_duplicate_edges_deduplicated_in_graph(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.add_edge("a", "b")
        assert builder.n_edges == 2
        assert builder.build().n_edges == 1
