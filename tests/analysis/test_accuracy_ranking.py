"""Tests for the accuracy and ranking analysis modules."""

import numpy as np
import pytest

from repro.analysis import accuracy, ranking
from repro.config import SimRankParams
from repro.core.diagonal import build_diagonal_index
from repro.core.queries import QueryEngine
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(50, out_degree=4, seed=23)


@pytest.fixture(scope="module")
def params():
    return SimRankParams(c=0.6, walk_steps=6, jacobi_iterations=4,
                         index_walkers=200, query_walkers=500, seed=2)


class TestAccuracy:
    def test_sample_pairs_bounds_and_determinism(self, graph):
        pairs = accuracy.sample_pairs(graph, 25, seed=1)
        assert len(pairs) == 25
        assert pairs == accuracy.sample_pairs(graph, 25, seed=1)
        assert all(i != j for i, j in pairs)
        assert all(0 <= i < graph.n_nodes and 0 <= j < graph.n_nodes for i, j in pairs)

    def test_sample_pairs_tiny_graph(self):
        tiny = generators.cycle_graph(2)
        assert accuracy.sample_pairs(tiny, 5) != []
        single = generators.star_graph(1).subgraph([0])
        assert accuracy.sample_pairs(single, 5) == []

    def test_ground_truth_and_linearized_agree(self, graph, params):
        truth = accuracy.ground_truth_matrix(graph, c=params.c)
        linearized = accuracy.exact_linearized_matrix(graph, params.with_(walk_steps=12))
        report = accuracy.evaluate_matrix(linearized, truth, "linearized")
        assert report.mean_abs_error < 1e-3

    def test_evaluate_pairs_report(self, graph, params):
        truth = accuracy.ground_truth_matrix(graph, c=params.c)
        index = build_diagonal_index(graph, params.with_(walk_steps=10))
        engine = QueryEngine(graph, index, params.with_(walk_steps=10))
        pairs = accuracy.sample_pairs(graph, 15, seed=4)
        report = accuracy.evaluate_pairs(engine.single_pair, truth, pairs, "mcsp")
        assert report.estimator == "mcsp"
        assert report.n_pairs == 15
        assert report.mean_abs_error < 0.05
        assert report.max_abs_error >= report.mean_abs_error
        assert set(report.to_dict()) >= {"rmse", "mean_signed_error"}

    def test_evaluate_pairs_empty(self):
        report = accuracy.evaluate_pairs(lambda i, j: 0.0, np.zeros((3, 3)), [], "none")
        assert report.n_pairs == 0
        assert np.isnan(report.mean_abs_error)

    def test_evaluate_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy.evaluate_matrix(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_evaluate_matrix_diagonal_toggle(self):
        reference = np.eye(3)
        estimate = np.zeros((3, 3))
        without = accuracy.evaluate_matrix(estimate, reference, include_diagonal=False)
        with_diag = accuracy.evaluate_matrix(estimate, reference, include_diagonal=True)
        assert without.mean_abs_error == 0.0
        assert with_diag.mean_abs_error > 0.0

    def test_compare_estimators(self, graph, params):
        truth = accuracy.ground_truth_matrix(graph, c=params.c)
        pairs = accuracy.sample_pairs(graph, 5, seed=7)
        reports = accuracy.compare_estimators(
            {"zero": lambda i, j: 0.0, "truth": lambda i, j: float(truth[i, j])},
            truth, pairs,
        )
        by_name = {report.estimator: report for report in reports}
        assert by_name["truth"].mean_abs_error == pytest.approx(0.0)
        assert by_name["zero"].mean_abs_error >= 0.0


class TestRanking:
    def test_top_k_indices_ordering(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert ranking.top_k_indices(scores, 2).tolist() == [1, 3]
        assert ranking.top_k_indices(scores, 2, exclude=1).tolist() == [3, 2]
        assert ranking.top_k_indices(scores, 0).tolist() == []
        assert len(ranking.top_k_indices(scores, 10)) == 4

    def test_precision_at_k(self):
        scores = np.array([0.9, 0.8, 0.1, 0.7])
        assert ranking.precision_at_k(scores, relevant=[0, 1], k=2) == 1.0
        assert ranking.precision_at_k(scores, relevant=[2], k=2) == 0.0
        assert ranking.precision_at_k(scores, relevant=[0], k=0) == 0.0

    def test_average_precision_perfect_and_worst(self):
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert ranking.average_precision(scores, relevant=[0, 1]) == pytest.approx(1.0)
        assert ranking.average_precision(scores, relevant=[]) == 0.0
        worst = ranking.average_precision(scores, relevant=[3])
        assert worst == pytest.approx(0.25)

    def test_ndcg_bounds(self):
        scores = np.array([0.9, 0.5, 0.4, 0.1])
        relevance = np.array([1.0, 1.0, 0.0, 0.0])
        assert ranking.ndcg_at_k(scores, relevance, k=2) == pytest.approx(1.0)
        assert ranking.ndcg_at_k(scores, np.zeros(4), k=2) == 0.0
        reversed_scores = scores[::-1].copy()
        assert 0.0 <= ranking.ndcg_at_k(reversed_scores, relevance, k=2) <= 1.0

    def test_kendall_tau(self):
        assert ranking.kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0
        assert ranking.kendall_tau([1, 2, 3], [30, 20, 10]) == -1.0
        assert -1.0 <= ranking.kendall_tau([1, 3, 2, 4], [1, 2, 3, 4]) <= 1.0
        assert ranking.kendall_tau([1], [2]) == 1.0
        with pytest.raises(ValueError):
            ranking.kendall_tau([1, 2], [1])

    def test_ranking_report(self):
        report = ranking.ranking_report(
            {"a": np.array([0.9, 0.1, 0.8]), "b": np.array([0.1, 0.9, 0.2])},
            relevant=[0, 2], k=2,
        )
        assert report["a"]["precision_at_k"] == 1.0
        assert report["b"]["precision_at_k"] == 0.5
        assert set(report["a"]) == {"precision_at_k", "average_precision"}
