"""Unit tests for Monte-Carlo estimators and linear-system assembly."""

import numpy as np
import pytest

from repro.config import SimRankParams
from repro.core import linear_system, montecarlo
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(70, out_degree=4, copy_prob=0.5, seed=4)


@pytest.fixture(scope="module")
def params():
    return SimRankParams(c=0.6, walk_steps=5, jacobi_iterations=3,
                         index_walkers=200, query_walkers=800, seed=3)


class TestWalkDistributions:
    def test_estimate_shape_and_normalisation(self, graph, params):
        dist = montecarlo.estimate_walk_distributions(graph, 3, params)
        assert dist.source == 3
        assert len(dist.per_step) == params.walk_steps + 1
        assert dist.survival(0) == pytest.approx(1.0)
        for step in range(params.walk_steps + 1):
            assert dist.survival(step) <= 1.0 + 1e-12

    def test_exact_matches_transition_power(self, graph, params):
        dist = montecarlo.exact_walk_distributions(graph, 3, params)
        transition = graph.transition_matrix()
        expected = np.zeros(graph.n_nodes)
        expected[3] = 1.0
        for step in range(params.walk_steps + 1):
            assert np.allclose(dist.dense(graph.n_nodes, step), expected, atol=1e-12)
            expected = transition @ expected

    def test_dense_conversion(self, graph, params):
        dist = montecarlo.estimate_walk_distributions(graph, 0, params, walkers=50)
        dense = dist.dense(graph.n_nodes, 0)
        assert dense[0] == pytest.approx(1.0)
        assert dense.sum() == pytest.approx(1.0)

    def test_distribution_error_decreases_with_walkers(self, graph, params):
        exact = montecarlo.exact_walk_distributions(graph, 2, params)
        few = montecarlo.estimate_walk_distributions(graph, 2, params, walkers=20)
        many = montecarlo.estimate_walk_distributions(graph, 2, params, walkers=5000)
        error_few = montecarlo.distribution_error(few, exact, graph.n_nodes)
        error_many = montecarlo.distribution_error(many, exact, graph.n_nodes)
        assert error_many < error_few

    def test_distribution_error_mismatched_steps_raises(self, graph, params):
        a = montecarlo.estimate_walk_distributions(graph, 2, params, walkers=10)
        b = montecarlo.estimate_walk_distributions(
            graph, 2, params.with_(walk_steps=3), walkers=10
        )
        with pytest.raises(ValueError):
            montecarlo.distribution_error(a, b, graph.n_nodes)

    def test_reproducible_with_same_seed(self, graph, params):
        first = montecarlo.estimate_walk_distributions(graph, 4, params, walkers=100)
        second = montecarlo.estimate_walk_distributions(graph, 4, params, walkers=100)
        for step in range(params.walk_steps + 1):
            assert np.array_equal(first.per_step[step][0], second.per_step[step][0])
            assert np.allclose(first.per_step[step][1], second.per_step[step][1])


class TestSparseDot:
    def test_disjoint_supports(self):
        left = (np.array([0, 1]), np.array([0.5, 0.5]))
        right = (np.array([2, 3]), np.array([0.5, 0.5]))
        assert montecarlo.sparse_dot(left, right) == 0.0

    def test_overlapping_supports_with_weights(self):
        left = (np.array([1, 2, 5]), np.array([0.2, 0.3, 0.5]))
        right = (np.array([2, 5, 7]), np.array([0.4, 0.6, 1.0]))
        weights = np.ones(10)
        expected = 0.3 * 0.4 + 0.5 * 0.6
        assert montecarlo.sparse_dot(left, right, weights) == pytest.approx(expected)

    def test_empty_vector(self):
        empty = (np.array([], dtype=np.int64), np.array([]))
        other = (np.array([1]), np.array([1.0]))
        assert montecarlo.sparse_dot(empty, other) == 0.0


class TestSelfMeetingColumn:
    def test_star_graph_column(self):
        # Leaves of a star: P e_leaf = e_hub, P^2 e_leaf = 0.
        graph = generators.star_graph(3)
        params = SimRankParams(c=0.5, walk_steps=3, seed=1)
        dist = montecarlo.exact_walk_distributions(graph, 1, params)
        column = montecarlo.self_meeting_column(dist, decay=0.5)
        assert column[1] == pytest.approx(1.0)   # t=0 at the leaf itself
        assert column[0] == pytest.approx(0.5)   # t=1 at the hub, weight c
        assert len(column) == 2


class TestLinearSystem:
    def test_discount_factors(self):
        factors = linear_system.discount_factors(0.5, 3)
        assert factors.tolist() == [1.0, 0.5, 0.25, 0.125]

    def test_diagonal_entries_are_at_least_one(self, graph, params):
        system = linear_system.build_system(graph, params)
        assert (system.diagonal() >= 1.0 - 1e-9).all()

    def test_exact_system_diagonal_at_least_one(self, graph, params):
        system = linear_system.build_exact_system(graph, params)
        assert (system.diagonal() >= 1.0 - 1e-9).all()

    def test_monte_carlo_approaches_exact_system(self, graph, params):
        exact = linear_system.build_exact_system(graph, params).toarray()
        estimated = linear_system.build_system(
            graph, params, walkers=5000
        ).toarray()
        assert np.abs(exact - estimated).max() < 0.05

    def test_build_rows_subset(self, graph, params):
        rows, cols, values = linear_system.build_rows(graph, [2, 9], params)
        assert set(rows.tolist()) <= {2, 9}
        assert (values > 0).all()
        assert len(rows) == len(cols) == len(values)

    def test_build_rows_empty_sources(self, graph, params):
        rows, cols, values = linear_system.build_rows(graph, [], params)
        assert len(rows) == 0 and len(cols) == 0 and len(values) == 0

    def test_build_system_row_subset_leaves_other_rows_empty(self, graph, params):
        system = linear_system.build_system(graph, params, sources=[0, 1])
        row_sums = np.asarray(system.sum(axis=1)).ravel()
        assert row_sums[0] > 0 and row_sums[1] > 0
        assert np.allclose(row_sums[2:], 0.0)

    def test_zero_in_degree_node_row_is_identity(self, params):
        from repro.graph.digraph import DiGraph

        graph = DiGraph(3, [(0, 1), (1, 2)])  # node 0 has no in-links
        system = linear_system.build_exact_system(graph, params).toarray()
        assert system[0, 0] == pytest.approx(1.0)
        assert np.allclose(system[0, 1:], 0.0)

    def test_system_diagnostics(self, graph, params):
        system = linear_system.build_system(graph, params)
        info = linear_system.system_diagnostics(system)
        assert info["n_rows"] == graph.n_nodes
        assert info["nnz"] == system.nnz
        assert info["min_diagonal"] >= 1.0 - 1e-9
        assert 0.0 <= info["rows_diagonally_dominant_fraction"] <= 1.0
