"""Networked HTTP serving — coalesced concurrent clients vs the serial REPL.

The REPL (``repro serve``) answers one request at a time: each client batch
is its own ``run_batch``, so a hot source shared by eight concurrent
clients is simulated eight times.  The HTTP tier
(:class:`repro.service.http.HttpServiceServer`) closes that gap with
cross-connection coalescing: requests arriving within
``ServiceParams.coalesce_window`` are merged into ONE planned batch, the
planner dedups sources *across connections*, and the scatter fans out
once.  This benchmark drives both paths with the same request stream —
eight concurrent ``http.client`` threads drawing from a shared hot-source
pool against the server, and the identical requests replayed one at a
time against an identically configured service (the serial REPL shape) —
with ``cache_capacity=0`` on both so the win measured is coalescing, not
caching.

Gates:

* sustained HTTP throughput must be >= 2x the serial REPL path's QPS with
  8 concurrent clients;
* request p99 latency must stay under a fixed bound (backpressure and
  coalescing must not trade throughput for an unbounded tail);
* every HTTP response must decode to answers **bitwise-identical** to the
  sequential in-process path at the same index version — before AND after
  a live (``"wait": true``) update through ``POST /update``.

Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_http_serve.py
"""

import asyncio
import http.client
import json
import math
import threading
import time

GRAPH_NODES = 2_000
OUT_DEGREE = 6
WALK_STEPS = 6
INDEX_WALKERS = 40
QUERY_WALKERS = 4_000
NUM_SHARDS = 4
SERVE_WORKERS = 2
SEED = 47

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
HOT_SOURCES = 16
PAIRS_PER_REQUEST = 6
TOP_K = 10
COALESCE_WINDOW = 0.005
MAX_IN_FLIGHT = 256

MIN_QPS_SPEEDUP = 2.0
MAX_P99_SECONDS = 1.0

UPDATE_EDGES = ((0, 1500), (3, 1200), (1500, 7))
POST_UPDATE_REQUESTS = 16


def _params():
    from repro.config import SimRankParams

    return SimRankParams(
        c=0.6, walk_steps=WALK_STEPS, jacobi_iterations=3,
        index_walkers=INDEX_WALKERS, query_walkers=QUERY_WALKERS, seed=SEED,
    )


def _make_service(graph, index):
    from repro.config import ServiceParams, ShardingParams
    from repro.service import ShardedQueryService

    return ShardedQueryService(
        graph, index, _params(),
        ServiceParams(cache_capacity=0, serve_backend="threads",
                      serve_workers=SERVE_WORKERS,
                      coalesce_window=COALESCE_WINDOW,
                      max_in_flight=MAX_IN_FLIGHT),
        sharding=ShardingParams(num_shards=NUM_SHARDS),
    )


def _request_stream(n_nodes, n_requests):
    """Deterministic request batches over a shared hot-source pool.

    Every request draws its pair/top-k sources from the same small pool
    (rotated by request index), so concurrent clients overlap heavily —
    the traffic shape cross-connection coalescing exists for.  The serial
    baseline replays the *same* stream, so both paths pay for the same
    queries; only the dedup differs.
    """
    pool = [source % n_nodes for source in range(HOT_SOURCES)]
    requests = []
    for index in range(n_requests):
        picks = [pool[(index + j) % len(pool)]
                 for j in range(2 * PAIRS_PER_REQUEST + 1)]
        lines = [f"pair {picks[2 * j]} {picks[2 * j + 1]}"
                 for j in range(PAIRS_PER_REQUEST)]
        lines.append(f"topk {picks[-1]} {TOP_K}")
        requests.append(lines)
    return requests


def _reference_answers(service, requests):
    """The serial REPL path: one ``run_batch`` per request, timed.

    Returns the per-request JSON-shaped answers (via the same
    :func:`~repro.service.http.encode_answer` the server uses, so floats
    compare exactly after a JSON round trip) plus the wall-clock of the
    sequential replay.
    """
    from repro.service import parse_query
    from repro.service.http import encode_answer

    default_k = service.service_params.default_top_k
    encoded = []
    start = time.perf_counter()
    for lines in requests:
        queries = [parse_query(line, default_k=default_k) for line in lines]
        answers = service.run_batch(queries)
        encoded.append([encode_answer(query, answer)
                        for query, answer in zip(queries, answers)])
    return encoded, time.perf_counter() - start


class _ServerThread:
    """Runs an :class:`HttpServiceServer` event loop on a daemon thread."""

    def __init__(self, server):
        self.server = server
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="bench-http-loop")

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("HTTP server failed to start within 60s")

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self.loop)
        future.result(timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)
        self.loop.close()


def _post_json(connection, path, payload):
    body = json.dumps(payload).encode("utf-8")
    connection.request("POST", path, body,
                       {"Content-Type": "application/json"})
    response = connection.getresponse()
    return response.status, json.loads(response.read().decode("utf-8"))


def _client_worker(port, jobs, barrier, statuses, payloads, latencies):
    """One concurrent client: keep-alive connection, one POST per request."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        barrier.wait(timeout=60)
        for index, lines in jobs:
            start = time.perf_counter()
            status, payload = _post_json(connection, "/query",
                                         {"queries": lines})
            latencies.append(time.perf_counter() - start)
            statuses[index] = status
            payloads[index] = payload
    finally:
        connection.close()


def _run_clients(port, requests):
    """Fan the request stream over ``N_CLIENTS`` concurrent threads."""
    statuses = [None] * len(requests)
    payloads = [None] * len(requests)
    latencies = []
    barrier = threading.Barrier(N_CLIENTS + 1)
    threads = []
    for client in range(N_CLIENTS):
        jobs = [(index, requests[index])
                for index in range(client, len(requests), N_CLIENTS)]
        thread = threading.Thread(
            target=_client_worker,
            args=(port, jobs, barrier, statuses, payloads, latencies),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    return statuses, payloads, latencies, elapsed


def _percentile(values, fraction):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(math.ceil(fraction * len(ordered)) - 1, 0)
    return ordered[rank]


def _identity_of(payloads, expected, version):
    """True iff every response matches the serial answers at ``version``."""
    identical = True
    for payload, answers in zip(payloads, expected):
        identical &= (payload is not None
                      and payload.get("index_version") == version
                      and payload.get("answers") == answers)
    return identical


def http_serve_experiment():
    from repro.core.diagonal import build_diagonal_index
    from repro.graph import generators
    from repro.service.http import HttpServiceServer

    params = _params()
    graph = generators.copying_model_graph(
        GRAPH_NODES, out_degree=OUT_DEGREE, seed=SEED, name="http-serve"
    )
    index = build_diagonal_index(graph, params)
    requests = _request_stream(graph.n_nodes,
                               N_CLIENTS * REQUESTS_PER_CLIENT)
    edges = [(u % graph.n_nodes, v % graph.n_nodes) for u, v in UPDATE_EDGES]

    # Serial REPL path: same service configuration, one request at a time.
    reference = _make_service(graph, index)
    with reference:
        version_before = reference.index_version
        expected_before, serial_seconds = _reference_answers(reference,
                                                             requests)
        reference.add_edges(edges)
        version_after = reference.index_version
        expected_after, _ = _reference_answers(
            reference, requests[:POST_UPDATE_REQUESTS]
        )

    # Networked path: 8 concurrent clients against the coalescing tier.
    server = HttpServiceServer(_make_service(graph, index),
                               host="127.0.0.1", port=0)
    runner = _ServerThread(server)
    runner.start()
    try:
        statuses, payloads, latencies, http_seconds = _run_clients(
            server.port, requests
        )
        all_ok = all(status == 200 for status in statuses)
        identical = _identity_of(payloads, expected_before, version_before)

        probe = http.client.HTTPConnection("127.0.0.1", server.port,
                                           timeout=120)
        try:
            update_status, update_payload = _post_json(
                probe, "/update",
                {"edges": [list(edge) for edge in edges], "wait": True},
            )
            probe.request("GET", "/stats", None, {})
            stats_response = probe.getresponse()
            coalescer_stats = json.loads(
                stats_response.read().decode("utf-8")
            ).get("coalescer", {})
        finally:
            probe.close()
        update_ok = (update_status == 200
                     and update_payload.get("index_version") == version_after)

        after_statuses, after_payloads, _, _ = _run_clients(
            server.port, requests[:POST_UPDATE_REQUESTS]
        )
        all_ok &= all(status == 200 for status in after_statuses)
        identical &= update_ok
        identical &= _identity_of(after_payloads, expected_after,
                                  version_after)
    finally:
        runner.stop()

    serial_qps = len(requests) / max(serial_seconds, 1e-9)
    http_qps = len(requests) / max(http_seconds, 1e-9)
    qps_speedup = http_qps / max(serial_qps, 1e-9)
    p99 = _percentile(latencies, 0.99)
    all_identical = bool(identical and all_ok)
    gate_passed = bool(all_identical
                       and qps_speedup >= MIN_QPS_SPEEDUP
                       and p99 <= MAX_P99_SECONDS)
    return {
        "rows": [
            {
                "path": "serial-repl",
                "clients": 1,
                "requests": len(requests),
                "seconds": round(serial_seconds, 4),
                "qps": round(serial_qps, 1),
                "p99_ms": None,
            },
            {
                "path": "http-coalesced",
                "clients": N_CLIENTS,
                "requests": len(requests),
                "seconds": round(http_seconds, 4),
                "qps": round(http_qps, 1),
                "p99_ms": round(p99 * 1e3, 2),
            },
        ],
        "qps_speedup": round(qps_speedup, 2),
        "p99_seconds": round(p99, 4),
        "all_identical": all_identical,
        "gate_passed": gate_passed,
        "coalesced_submissions": coalescer_stats.get("coalesced_submissions", 0),
        "batches": coalescer_stats.get("batches", 0),
        "graph_nodes": graph.n_nodes,
        "graph_edges": graph.n_edges,
        "num_shards": NUM_SHARDS,
        "n_requests": len(requests),
        "hot_sources": HOT_SOURCES,
        "coalesce_window": COALESCE_WINDOW,
    }


def _check_and_render(result) -> str:
    from repro.bench import reporting

    rendered = reporting.format_table(
        result["rows"],
        title=(f"HTTP serving of {result['n_requests']} requests over a "
               f"{result['hot_sources']}-source hot pool "
               f"({result['graph_nodes']}-node graph, {result['num_shards']} "
               f"shards, window={result['coalesce_window']}s; "
               f"{result['coalesced_submissions']} submissions coalesced "
               f"into {result['batches']} batches)"),
    )
    assert result["all_identical"], (
        "an HTTP response diverged bitwise from the serial in-process "
        "answers (or a request/update failed)"
    )
    assert result["qps_speedup"] >= MIN_QPS_SPEEDUP, (
        f"HTTP QPS is only {result['qps_speedup']:.2f}x the serial REPL "
        f"path (needs >= {MIN_QPS_SPEEDUP}x with {N_CLIENTS} clients)"
    )
    assert result["p99_seconds"] <= MAX_P99_SECONDS, (
        f"request p99 is {result['p99_seconds']:.3f}s "
        f"(bound {MAX_P99_SECONDS}s)"
    )
    return rendered


def test_http_serve(benchmark, results_dir):
    from repro.bench import reporting

    result = benchmark.pedantic(http_serve_experiment, rounds=1, iterations=1)
    rendered = _check_and_render(result)
    reporting.save_results("http_serve", result, rendered, results_dir)
    print("\n" + rendered)


if __name__ == "__main__":
    from repro.bench import reporting

    outcome = http_serve_experiment()
    rendered = _check_and_render(outcome)
    reporting.save_results("http_serve", outcome, rendered)
    print(rendered)
    print(f"HTTP QPS speedup over serial REPL at {N_CLIENTS} clients: "
          f"{outcome['qps_speedup']:.1f}x, p99 {outcome['p99_seconds']*1e3:.0f}ms, "
          f"answers bitwise-identical: {outcome['all_identical']}")
