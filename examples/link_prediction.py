#!/usr/bin/env python3
"""Link prediction / churn-style example.

The paper lists recommender systems and churn prediction among SimRank's
applications; both reduce to "score how related two nodes are".  This example
holds out a fraction of a synthetic social graph's edges, scores candidate
pairs with CloudWalker SimRank and with co-citation, and reports how well
each ranks the held-out (true) edges above random non-edges (AUC-style hit
rate).

Run with::

    python examples/link_prediction.py
"""

import numpy as np

from repro import CloudWalker, SimRankParams
from repro.baselines.cocitation import cocitation_similarity
from repro.graph import generators
from repro.graph.digraph import DiGraph


def split_edges(graph: DiGraph, holdout_fraction: float, seed: int):
    """Remove a random fraction of edges; return (training graph, held-out edges)."""
    rng = np.random.default_rng(seed)
    edges = graph.edge_array()
    mask = rng.random(len(edges)) < holdout_fraction
    held_out = [tuple(edge) for edge in edges[mask].tolist()]
    training = DiGraph(graph.n_nodes, edges[~mask], name=f"{graph.name}-train")
    return training, held_out


def ranking_score(positive: list, negative: list) -> float:
    """Fraction of (positive, negative) score pairs ranked correctly (ties = 0.5)."""
    wins = 0.0
    for pos in positive:
        for neg in negative:
            if pos > neg:
                wins += 1.0
            elif pos == neg:
                wins += 0.5
    return wins / (len(positive) * len(negative))


def main() -> None:
    graph = generators.copying_model_graph(n=400, out_degree=8, copy_prob=0.6, seed=11)
    training, held_out = split_edges(graph, holdout_fraction=0.1, seed=7)
    print(f"full graph: {graph}")
    print(f"training graph: {training} (+{len(held_out)} held-out edges)")

    params = SimRankParams.paper_defaults().with_(query_walkers=1_500)
    walker = CloudWalker(training, params=params)
    walker.build_index()

    rng = np.random.default_rng(3)
    sample_positive = [held_out[i] for i in rng.choice(len(held_out), size=min(40, len(held_out)), replace=False)]
    negatives = []
    while len(negatives) < 40:
        u, v = rng.integers(0, training.n_nodes, size=2)
        if u != v and not graph.has_edge(int(u), int(v)):
            negatives.append((int(u), int(v)))

    simrank_positive = [walker.single_pair(u, v) for u, v in sample_positive]
    simrank_negative = [walker.single_pair(u, v) for u, v in negatives]
    cocite_positive = [cocitation_similarity(training, u, v) for u, v in sample_positive]
    cocite_negative = [cocitation_similarity(training, u, v) for u, v in negatives]

    print("\npairwise ranking score (1.0 = every true edge ranked above every non-edge):")
    print(f"  SimRank (CloudWalker): {ranking_score(simrank_positive, simrank_negative):.3f}")
    print(f"  Co-citation:           {ranking_score(cocite_positive, cocite_negative):.3f}")

    best = max(zip(sample_positive, simrank_positive), key=lambda pair: pair[1])
    print(f"\nhighest-scoring held-out edge: {best[0]} with SimRank {best[1]:.4f}")


if __name__ == "__main__":
    main()
