"""Tests for scheduler helpers and shuffle key partitioners."""

import pytest

from repro.engine import ClusterContext
from repro.engine.partitioner import HashKeyPartitioner, RangeKeyPartitioner
from repro.engine.scheduler import estimate_records_bytes
from repro.errors import ConfigurationError


class TestEstimateRecordsBytes:
    def test_empty(self):
        assert estimate_records_bytes([[]]) == 0
        assert estimate_records_bytes([]) == 0

    def test_scales_with_record_count(self):
        small = estimate_records_bytes([[("key", "x" * 100)] * 10])
        large = estimate_records_bytes([[("key", "x" * 100)] * 1000])
        assert large > small * 50

    def test_handles_unpicklable_records(self):
        records = [[lambda: None for _ in range(5)]]
        assert estimate_records_bytes(records) > 0


class TestHashKeyPartitioner:
    def test_range_and_determinism(self):
        partitioner = HashKeyPartitioner(7)
        for key in ["a", 42, (1, 2), "node-17"]:
            index = partitioner.partition(key)
            assert 0 <= index < 7
            assert index == partitioner.partition(key)

    def test_equality(self):
        assert HashKeyPartitioner(3) == HashKeyPartitioner(3)
        assert HashKeyPartitioner(3) != HashKeyPartitioner(4)
        assert "num_partitions=3" in repr(HashKeyPartitioner(3))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            HashKeyPartitioner(0)


class TestRangeKeyPartitioner:
    def test_bounds_partitioning(self):
        partitioner = RangeKeyPartitioner([10, 20])
        assert partitioner.num_partitions == 3
        assert partitioner.partition(5) == 0
        assert partitioner.partition(10) == 0
        assert partitioner.partition(15) == 1
        assert partitioner.partition(99) == 2

    def test_from_sample_produces_balanced_bounds(self):
        keys = list(range(100))
        partitioner = RangeKeyPartitioner.from_sample(keys, 4)
        assignments = [partitioner.partition(key) for key in keys]
        counts = [assignments.count(p) for p in range(partitioner.num_partitions)]
        assert max(counts) <= 2 * min(count for count in counts if count)

    def test_from_sample_duplicate_keys_collapse(self):
        partitioner = RangeKeyPartitioner.from_sample([1, 1, 1, 1], 4)
        assert partitioner.num_partitions <= 2

    def test_from_sample_empty(self):
        partitioner = RangeKeyPartitioner.from_sample([], 3)
        assert partitioner.num_partitions == 1
        assert partitioner.partition("anything") == 0

    def test_from_sample_invalid(self):
        with pytest.raises(ConfigurationError):
            RangeKeyPartitioner.from_sample([1, 2], 0)


class TestStageStructure:
    def test_cached_shuffle_not_recomputed(self):
        with ClusterContext() as ctx:
            calls = []

            def touch(pair):
                calls.append(pair)
                return pair

            grouped = (
                ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
                .map(touch)
                .reduce_by_key(lambda x, y: x + y)
                .persist()
            )
            grouped.collect()
            first = len(calls)
            grouped.map(lambda pair: pair[0]).collect()
            assert len(calls) == first

    def test_job_metrics_stage_kinds_in_order(self):
        with ClusterContext() as ctx:
            ctx.parallelize([("a", 1)], 1).reduce_by_key(lambda x, y: x + y).collect()
            kinds = [stage.kind for stage in ctx.last_job_metrics.stages]
            assert kinds == ["narrow", "shuffle-map", "shuffle-reduce"]

    def test_diamond_lineage_reuses_memoized_parent(self):
        with ClusterContext() as ctx:
            calls = []

            def touch(x):
                calls.append(x)
                return x

            base = ctx.parallelize(range(10), 2).map(touch)
            left = base.map(lambda x: x * 2)
            right = base.map(lambda x: x * 3)
            union = left.union(right)
            assert union.count() == 20
            # `base` is materialised once per job even though two children use it.
            assert len(calls) == 10
