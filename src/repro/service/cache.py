"""LRU cache of per-source walk distributions.

The expensive part of every online query is estimating the walk
distributions ``P^t e_source`` — O(T · R') work per source.  Those
distributions depend only on ``(node, steps, walkers, seed)``, so under a
skewed workload (the usual shape of "millions of users" traffic) most
queries can be answered from previously simulated distributions.  This cache
makes that reuse explicit and observable: every lookup is accounted as a hit
or a miss, and evictions are counted so capacity tuning has data to work
with.

Because the cached value is exactly what the direct Monte-Carlo estimator
would produce for the same key (see
:func:`repro.core.montecarlo.estimate_walk_distributions_batch`), a cache
hit can never change a query answer — only make it cheaper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro.config import SimRankParams
from repro.core import reachability
from repro.core.montecarlo import WalkDistributions
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached walk distribution.

    Two queries share a cache entry exactly when the distribution they need
    is mathematically identical: same source node, same number of walk
    steps, same Monte-Carlo budget, and same base seed.
    """

    node: int
    steps: int
    walkers: int
    seed: Optional[int]

    @classmethod
    def for_query(cls, node: int, params: SimRankParams, walkers: int) -> "CacheKey":
        """Key for one source's distribution under ``params``.

        ``walkers`` is passed separately because callers may override the
        per-query Monte-Carlo budget (``params.query_walkers``) per call.
        """
        return cls(node=int(node), steps=params.walk_steps, walkers=int(walkers),
                   seed=params.seed)


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    invalidations: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total lookups served (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Counters (plus derived hit rate) as a plain dict, for stats()."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "invalidations": self.invalidations,
            # Routed evictions (update-driven invalidate_sources /
            # invalidate_reachable removals) under the name operators
            # correlate with update storms; capacity evictions stay
            # separate under "evictions".
            "evictions_routed": self.invalidations,
            "hit_rate": self.hit_rate,
            **self.extras,
        }


class WalkDistributionCache:
    """Bounded LRU mapping :class:`CacheKey` -> :class:`WalkDistributions`.

    ``capacity`` is the maximum number of distributions kept; 0 disables
    caching (every lookup misses, nothing is stored).  Recency is updated on
    both successful lookups and inserts, so a hot source stays resident as
    long as queries keep touching it.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ConfigurationError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, WalkDistributions]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        """Membership test without touching recency or the stats counters."""
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[WalkDistributions]:
        """Return the cached distribution for ``key``, or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, distributions: WalkDistributions) -> None:
        """Insert (or refresh) a distribution, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = distributions
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_sources(self, nodes: Iterable[int]) -> int:
        """Drop every entry whose source node is in ``nodes``; returns the count.

        This is the graph-mutation hook: when edges are inserted, only the
        sources inside the forward BFS ball of the new edges' heads
        (:func:`repro.core.walks.forward_reachable_set`) have stale
        distributions, and a key's node identifies its source — so exactly
        those entries are removed, across *all* ``(steps, walkers, seed)``
        variants of each node, and every other entry stays hot.  Removals
        are counted as ``invalidations``, separately from capacity
        ``evictions``.
        """
        stale_nodes = {int(node) for node in nodes}
        stale_keys = [key for key in self._entries if key.node in stale_nodes]
        for key in stale_keys:
            del self._entries[key]
        self.stats.invalidations += len(stale_keys)
        return len(stale_keys)

    def invalidate_reachable(self, graph: Any, heads: Iterable[int],
                             steps: int, mode: str = "interval") -> int:
        """Drop the entries a mutation with the given edge heads stales.

        Convenience radius-query form of :meth:`invalidate_sources`: the
        stale sources are the bounded forward ball around ``heads`` on the
        *post-mutation* ``graph``, computed by
        :func:`repro.core.reachability.reachable_set` in the requested
        ``mode`` (``"interval"`` window labels or the ``"bfs"`` oracle —
        identical sets either way).  The service's own mutation path passes
        the walker's already-computed affected set to
        :meth:`invalidate_sources` instead, so routing runs once per drain;
        this entry point serves callers that only know the edge batch.
        """
        ball = reachability.reachable_set(graph, heads, steps, mode=mode)
        return self.invalidate_sources(ball)

    def clear(self) -> None:
        """Drop every entry (the stats counters are kept)."""
        self._entries.clear()

    def memory_bytes(self) -> int:
        """Approximate resident payload size of all cached distributions."""
        total = 0
        for entry in self._entries.values():
            for nodes, values in entry.per_step:
                total += int(nodes.nbytes) + int(values.nbytes)
        return total

    def __repr__(self) -> str:
        return (
            f"WalkDistributionCache(size={len(self)}, capacity={self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
