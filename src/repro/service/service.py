"""The online SimRank query service.

:class:`QueryService` is the serving layer on top of the core query engine:
it owns a persistently loaded graph + diagonal index, deduplicates and
batches concurrent queries so distributions shared between them are
simulated once (:mod:`repro.service.batching`), keeps an LRU cache of
per-source walk distributions so repeated traffic skips simulation entirely
(:mod:`repro.service.cache`), and accepts **live edge insertions** that are
folded into the index incrementally between query batches
(:mod:`repro.service.updates`).

Determinism is the design invariant: for a fixed seed, every answer the
service produces — batched, cached, or one-off — is bitwise-identical to the
direct core computation for the same source nodes, because all three paths
consume the same per-source ``(seed, source)`` random stream and share the
scoring code of :class:`repro.core.queries.QueryEngine`.  Updates keep the
invariant: after any sequence of :meth:`QueryService.add_edges` calls the
served index is bitwise-identical to one built from scratch on the updated
graph, and only cache entries inside the update's affected ball are dropped.

Every batch answer carries the service's monotonically increasing
:attr:`~QueryService.index_version` (see :class:`BatchAnswers`), so callers
interleaving queries with updates can detect which graph generation an
answer was computed against.

Example
-------
>>> from repro.graph import generators
>>> from repro.config import SimRankParams
>>> from repro.core.diagonal import build_diagonal_index
>>> from repro.service import PairQuery, QueryService, TopKQuery
>>> graph = generators.copying_model_graph(120, out_degree=5, seed=1)
>>> params = SimRankParams.fast_defaults()
>>> service = QueryService(graph, build_diagonal_index(graph, params), params)
>>> answers = service.run_batch([PairQuery(3, 7), TopKQuery(3, k=5)])
>>> 0.0 <= answers[0] <= 1.0
True
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import ServiceParams, SimRankParams, UpdateParams
from repro.core import kernels, montecarlo
from repro.core.index import DiagonalIndex, SnapshotStore
from repro.core.montecarlo import WalkDistributions
from repro.core.queries import QueryEngine, rank_top_k
from repro.errors import CloudWalkerError
from repro.graph.digraph import DiGraph
from repro.service.batching import (
    BatchPlan,
    PairQuery,
    Query,
    SourceQuery,
    TopKQuery,
    chunk_sources,
    plan_batch,
)
from repro.service.cache import CacheKey, WalkDistributionCache
from repro.service.updates import GraphMutator, MutationResult

PathLike = Union[str, os.PathLike]

Answer = Any
"""A query answer: float (pair), ndarray (source) or ranking list (top-k)."""


class BatchAnswers(List[Answer]):
    """The answers of one batch, tagged with the index version that made them.

    Behaves exactly like the plain list of answers it used to be (indexing,
    iteration, equality with lists), plus an :attr:`index_version` attribute:
    the value of :attr:`QueryService.index_version` at the moment the batch
    executed.  A caller interleaving queries with updates compares versions
    across batches to detect answers computed against an older graph.
    """

    index_version: int

    def __init__(self, answers: Sequence[Answer], index_version: int) -> None:
        super().__init__(answers)
        self.index_version = index_version


class QueryService:
    """Batched, cached SimRank query serving over a loaded index.

    Parameters
    ----------
    graph:
        The graph queries run against.
    index:
        A built (or loaded) diagonal index; validated against ``graph``.
    params:
        Algorithmic parameters; defaults to the parameters the index was
        built with, which is what keeps answers reproducible across restarts.
    service_params:
        Cache capacity and batch-planning knobs.
    update_params:
        Live-update knobs (pending-edge queue bound, snapshot cadence).
    """

    def __init__(
        self,
        graph: DiGraph,
        index: DiagonalIndex,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
    ) -> None:
        index.validate_for(graph)
        self.graph = graph
        self.index = index
        self.params = params or index.params
        self.service_params = service_params or ServiceParams()
        self.update_params = update_params or UpdateParams()
        # Select the kernel tier for this process (oracles vs jitted twins;
        # falls back to the oracles when numba is absent — see
        # repro.core.kernels).  Answers are bitwise-identical either way.
        kernels.request(self.service_params.kernels)
        self.engine = QueryEngine(graph, index, self.params)
        self.budget_calibration = None
        self.query_params = self._derive_query_params()
        self.query_engine = (
            self.engine if self.query_params is self.params
            else QueryEngine(graph, index, self.query_params)
        )
        self.cache = WalkDistributionCache(self.service_params.cache_capacity)
        self._mutator: Optional[GraphMutator] = None
        self._version = 1
        self._counters: Dict[str, int] = {
            "queries": 0, "pair_queries": 0, "source_queries": 0,
            "topk_queries": 0, "batches": 0, "sources_simulated": 0,
            "sources_deduplicated": 0, "updates_applied": 0, "edges_added": 0,
            "snapshots_written": 0,
        }

    def _derive_query_params(self) -> SimRankParams:
        """Serving-time parameters: ``self.params`` itself in exact mode.

        Exact mode (no ``accuracy_budget``) returns the *identity* object,
        so every query-path read of ``self.query_params`` sees bitwise the
        same values as before the approximate mode existed.  With a budget,
        a reduced ``(query_walkers, walk_steps)`` operating point is taken
        from ``ServiceParams.approx_walkers`` / ``approx_steps`` when set,
        otherwise calibrated here against exact linearized ground truth
        (quadratic in graph size — precalibrate for large graphs).  Index
        maintenance keeps using the exact ``self.params`` either way.
        """
        budget = self.service_params.accuracy_budget
        if budget is None:
            return self.params
        walkers = self.service_params.approx_walkers
        steps = self.service_params.approx_steps
        if walkers is None:
            from repro.analysis.accuracy import calibrate_query_budget

            calibration = calibrate_query_budget(
                self.graph, self.index, self.params, budget
            )
            self.budget_calibration = calibration
            walkers = calibration.walkers
            if steps is None:
                steps = calibration.walk_steps
        if steps is None:
            steps = self.params.walk_steps
        return self.params.with_(query_walkers=walkers, walk_steps=steps)

    def _rebuild_query_engine(self) -> None:
        """Re-point ``query_engine`` after ``graph``/``index``/``engine`` moved."""
        self.query_engine = (
            self.engine if self.query_params is self.params
            else QueryEngine(self.graph, self.index, self.query_params)
        )

    # ------------------------------------------------------------------ #
    # Cold start
    # ------------------------------------------------------------------ #
    @classmethod
    def from_index_file(
        cls,
        graph: DiGraph,
        path: PathLike,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
    ) -> "QueryService":
        """Cold-start a service from a persisted index — no re-indexing.

        The index file carries the parameters it was built with, so a
        restarted service answers queries identically to the one that
        built it (provided ``params`` is left at its default).
        """
        index = DiagonalIndex.load(path)
        return cls(graph, index, params=params, service_params=service_params,
                   update_params=update_params)

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
    ) -> "QueryService":
        """Build an index for ``graph`` and serve it, update-ready.

        The build runs through the incremental maintainer (per-source
        streams, cold-start solve), so the service keeps the linear system
        in memory and the first :meth:`add_edges` pays only for its affected
        rows — unlike a service constructed around a pre-built index, whose
        first update must re-estimate the system once.
        """
        params = params or SimRankParams.paper_defaults()
        mutator = GraphMutator(graph, params, update_params)
        index = mutator.build()
        service = cls(graph, index, params=params, service_params=service_params,
                      update_params=update_params)
        service._mutator = mutator
        return service

    @classmethod
    def from_snapshot(
        cls,
        graph: DiGraph,
        directory: PathLike,
        params: Optional[SimRankParams] = None,
        service_params: Optional[ServiceParams] = None,
        update_params: Optional[UpdateParams] = None,
    ) -> "QueryService":
        """Cold-start from the newest snapshot in ``directory``.

        Restores the snapshot's index *and* linear system (when present), so
        the restarted service resumes incremental updates without
        re-estimating anything, and continues the version sequence where the
        snapshotting service left off.  ``graph`` must be the graph the
        snapshot was taken of.
        """
        update_params = update_params or UpdateParams()
        store = SnapshotStore(directory, retain=update_params.snapshot_retain)
        version, index = store.load_latest()
        service = cls(graph, index, params=params, service_params=service_params,
                      update_params=update_params)
        service._version = version
        system = store.load_system(version)
        if system is not None:
            mutator = GraphMutator(graph, service.params, update_params)
            mutator.attach(index, system=system)
            service._mutator = mutator
        return service

    # ------------------------------------------------------------------ #
    # Live updates
    # ------------------------------------------------------------------ #
    @property
    def index_version(self) -> int:
        """Monotonically increasing generation of the served index.

        Starts at 1 (or at the restored snapshot's version) and increases by
        one per applied update.  Carried on every :class:`BatchAnswers`, so
        callers can detect answers computed against a stale graph.
        """
        return self._version

    @property
    def pending_updates(self) -> int:
        """Edges queued via ``add_edges(..., defer=True)``, not yet applied."""
        return self._mutator.pending_edges if self._mutator is not None else 0

    def _ensure_mutator(self) -> GraphMutator:
        if self._mutator is None:
            # Attaching to a pre-built index estimates the linear system for
            # the current graph once; from then on updates are incremental.
            # Services created via build()/from_snapshot() skip this.
            mutator = GraphMutator(self.graph, self.params, self.update_params)
            mutator.attach(self.index)
            self._mutator = mutator
        return self._mutator

    def add_edges(self, edges: Sequence[Tuple[int, int]],
                  defer: bool = False) -> Optional[MutationResult]:
        """Insert edges into the served graph.

        With ``defer=False`` (default) the update — plus anything already
        queued — is applied now as one incremental re-index.  With
        ``defer=True`` the edges are only queued; the queue is drained at
        the start of the next :meth:`run_batch` (or by an explicit
        :meth:`flush_updates`), so a burst of updates between two query
        batches costs one combined re-index instead of one each.  The
        queue is bounded by ``UpdateParams.max_pending_edges``: a deferred
        batch that would overflow it drains the queue eagerly first, and a
        single batch larger than the bound is simply applied immediately.

        Edges are validated on this call (negative endpoints, runaway node
        growth), so a bad edge fails here instead of poisoning the queue.
        Returns the :class:`~repro.service.updates.MutationResult` of the
        applied update; None when deferring, or when every submitted edge
        already existed (a graph no-op: no re-index, no version bump).
        """
        mutator = self._ensure_mutator()
        if defer:
            if len(edges) > self.update_params.max_pending_edges:
                # Too large to ever queue: apply now (never lose edges).
                return self._apply_updates(edges)
            if (mutator.pending_edges + len(edges)
                    > self.update_params.max_pending_edges):
                self.flush_updates()
            mutator.enqueue(edges)
            return None
        return self._apply_updates(edges)

    def flush_updates(self) -> Optional[MutationResult]:
        """Apply all queued edge insertions as one incremental re-index.

        Swaps in the updated graph + index, invalidates exactly the cache
        entries of affected sources, and bumps :attr:`index_version`.
        Returns None when the queue is empty.
        """
        if self._mutator is None or self._mutator.pending_edges == 0:
            return None
        return self._apply_updates(())

    def _apply_updates(self, edges: Sequence[Tuple[int, int]]) -> Optional[MutationResult]:
        """Drain the queue plus ``edges`` and swap the result in."""
        result = self._ensure_mutator().apply(edges)
        if result is None:
            return None
        self._adopt_mutation(result)
        return result

    def _adopt_mutation(self, result: MutationResult) -> None:
        """Swap in the mutator's post-update state and bump the version.

        The cheap, state-swapping half of an update — split from the
        expensive re-index so the overlapped-drain path
        (:meth:`ShardedQueryService.flush_updates_overlapped
        <repro.service.sharded.ShardedQueryService.flush_updates_overlapped>`)
        can run the re-index outside the service lock and call only this
        part under it.  Readers holding the previous ``graph`` / ``index``
        / ``engine`` objects stay consistent: the mutator builds a *new*
        graph and index and this merely re-points the service at them.
        """
        self.graph = self._mutator.graph
        self.index = self._mutator.index
        self.engine = QueryEngine(self.graph, self.index, self.params)
        self._rebuild_query_engine()
        self.cache.invalidate_sources(result.affected)
        self._version += 1
        self._counters["updates_applied"] += 1
        self._counters["edges_added"] += result.edges_added
        self._maybe_auto_snapshot()

    def _maybe_auto_snapshot(self) -> None:
        cadence = self.update_params.snapshot_every
        if cadence and self._counters["updates_applied"] % cadence == 0:
            self.save_snapshot()

    def save_snapshot(self, directory: Optional[PathLike] = None) -> Tuple[int, str]:
        """Persist the served index (and system) at the current version.

        ``directory`` defaults to ``update_params.snapshot_dir``.  Returns
        ``(version, index_path)``.  Saving the same version twice is a
        no-op; a directory whose versions are ahead of this service is
        rejected — it belongs to another service's lineage.
        """
        directory = directory if directory is not None else self.update_params.snapshot_dir
        if directory is None:
            raise CloudWalkerError(
                "no snapshot directory: pass one or set UpdateParams.snapshot_dir"
            )
        store = SnapshotStore(directory, retain=self.update_params.snapshot_retain)
        latest = store.latest_version()
        if latest is not None and latest > self._version:
            raise CloudWalkerError(
                f"snapshot directory {directory} is at version {latest}, ahead "
                f"of this service (version {self._version})"
            )
        if latest != self._version:
            system = self._mutator.system if self._mutator is not None else None
            store.save_snapshot(self.index, system=system, version=self._version)
            self._counters["snapshots_written"] += 1
        return self._version, str(store.index_path(self._version))

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(self, queries: Sequence[Query],
                  walkers: Optional[int] = None,
                  flush_pending: bool = True) -> BatchAnswers:
        """Answer a batch of queries; answers align with the input order.

        Queued graph updates are applied first, so a batch never runs
        against an index older than updates accepted before it.  Distinct
        sources referenced by the batch are resolved once: from the cache
        when possible, otherwise via chunked multi-source walk simulations.
        Answer types by query: :class:`PairQuery` -> float,
        :class:`SourceQuery` -> dense score vector, :class:`TopKQuery` ->
        ``[(node, score), ...]``.  The returned :class:`BatchAnswers` lists
        the answers in input order and carries the :attr:`index_version`
        they were computed at.

        ``flush_pending=False`` skips the drain — for callers that already
        flushed under their own locking discipline (the sharded service
        drains *before* taking its serve lock so the expensive re-index
        never serialises readers behind it).
        """
        if flush_pending:
            self.flush_updates()
        queries = list(queries)
        for query in queries:
            self._validate_query(query)
        plan = plan_batch(queries)
        distributions = self._resolve_distributions(plan, walkers)
        answers = [self._answer(query, distributions) for query in queries]
        self._counters["batches"] += 1
        self._counters["queries"] += len(queries)
        self._counters["sources_deduplicated"] += plan.deduplicated
        return BatchAnswers(answers, self._version)

    def _validate_query(self, query: Query) -> None:
        self.graph.check_node(query.source)
        if isinstance(query, PairQuery):
            self.graph.check_node(query.target)
        elif isinstance(query, TopKQuery):
            if query.k < 1:
                raise CloudWalkerError(f"topk requires k >= 1, got {query.k}")
        elif not isinstance(query, SourceQuery):
            raise CloudWalkerError(f"unknown query type {type(query).__name__!r}")

    def _resolve_distributions(
        self, plan: BatchPlan, walkers: Optional[int]
    ) -> Dict[int, WalkDistributions]:
        walkers_count = (walkers if walkers is not None
                         else self.query_params.query_walkers)
        resolved: Dict[int, WalkDistributions] = {}
        missing: List[int] = []
        for source in plan.sources:
            cached = self.cache.get(
                CacheKey.for_query(source, self.query_params, walkers_count)
            )
            if cached is not None:
                resolved[source] = cached
            else:
                missing.append(source)
        for chunk in chunk_sources(missing, self.service_params.max_batch_size):
            simulated = montecarlo.estimate_walk_distributions_batch(
                self.graph, chunk, self.query_params, walkers=walkers_count
            )
            self._counters["sources_simulated"] += len(simulated)
            for source, distribution in simulated.items():
                resolved[source] = distribution
                self.cache.put(
                    CacheKey.for_query(source, self.query_params, walkers_count),
                    distribution,
                )
        return resolved

    def _answer(self, query: Query,
                distributions: Dict[int, WalkDistributions]) -> Answer:
        if isinstance(query, PairQuery):
            self._counters["pair_queries"] += 1
            if query.source == query.target:
                return 1.0
            return self.query_engine.combine_pair(
                distributions[query.source], distributions[query.target]
            )
        scores = self.query_engine.propagate_source(
            query.source, distributions[query.source]
        )
        if isinstance(query, SourceQuery):
            self._counters["source_queries"] += 1
            return scores
        self._counters["topk_queries"] += 1
        return rank_top_k(scores, query.source, query.k)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release pooled resources; safe to call more than once.

        The single-shard service owns no pools, so this is a no-op — it
        exists so callers (the CLI serve loop, benchmarks, tests) can
        manage every service uniformly: :class:`ShardedQueryService`
        overrides it to shut down its persistent executor backends.  A
        closed service remains queryable; pooled backends transparently
        recreate their workers on the next use.
        """

    def __enter__(self) -> "QueryService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release pooled resources via :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------ #
    # One-off convenience queries (single-element batches)
    # ------------------------------------------------------------------ #
    def single_pair(self, node_i: int, node_j: int,
                    walkers: Optional[int] = None) -> float:
        """SimRank score of one pair, served through the cache."""
        return self.run_batch([PairQuery(node_i, node_j)], walkers=walkers)[0]

    def single_source(self, node: int,
                      walkers: Optional[int] = None) -> np.ndarray:
        """Score vector of one source, served through the cache."""
        return self.run_batch([SourceQuery(node)], walkers=walkers)[0]

    def top_k(self, node: int, k: Optional[int] = None,
              walkers: Optional[int] = None) -> List:
        """Top-``k`` ranking for one source, served through the cache."""
        k = k if k is not None else self.service_params.default_top_k
        return self.run_batch([TopKQuery(node, k=k)], walkers=walkers)[0]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Serving counters plus cache effectiveness, for logs and tests."""
        return {
            **self._counters,
            "index_version": self._version,
            "pending_updates": self.pending_updates,
            "reachability": self.update_params.reachability,
            "approx_mode": self.query_params is not self.params,
            "accuracy_budget": self.service_params.accuracy_budget,
            "query_walkers_served": self.query_params.query_walkers,
            "walk_steps_served": self.query_params.walk_steps,
            "kernels_requested": kernels.requested(),
            "kernels_active": kernels.active(),
            "cache_size": len(self.cache),
            "cache_capacity": self.cache.capacity,
            "cache_memory_bytes": self.cache.memory_bytes(),
            **{f"cache_{key}": value
               for key, value in self.cache.stats.to_dict().items()},
        }

    def __repr__(self) -> str:
        return (
            f"QueryService(graph={self.graph.name!r}, n_nodes={self.graph.n_nodes}, "
            f"version={self._version}, queries={self._counters['queries']}, "
            f"cache_hit_rate={self.cache.stats.hit_rate:.2f})"
        )
