"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, NodeNotFoundError
from repro.graph.digraph import DiGraph


@pytest.fixture()
def small_graph() -> DiGraph:
    # 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated
    return DiGraph(4, [(0, 1), (0, 2), (1, 2), (2, 0)], name="small")


class TestConstruction:
    def test_counts(self, small_graph):
        assert small_graph.n_nodes == 4
        assert small_graph.n_edges == 4
        assert len(small_graph) == 4

    def test_empty_graph(self):
        graph = DiGraph(3, [])
        assert graph.n_nodes == 3
        assert graph.n_edges == 0
        assert list(graph.edges()) == []

    def test_zero_node_graph(self):
        graph = DiGraph(0, [])
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_duplicate_edges_removed(self):
        graph = DiGraph(3, [(0, 1), (0, 1), (1, 2)])
        assert graph.n_edges == 2

    def test_self_loops_kept(self):
        graph = DiGraph(2, [(0, 0), (0, 1)])
        assert graph.n_edges == 2
        assert graph.has_edge(0, 0)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(2, [(0, 5)])
        with pytest.raises(GraphFormatError):
            DiGraph(2, [(-1, 0)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(-1, [])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(3, [(0, 1, 2)])

    def test_repr_mentions_name(self, small_graph):
        assert "small" in repr(small_graph)

    def test_equality(self, small_graph):
        clone = DiGraph(4, [(0, 1), (0, 2), (1, 2), (2, 0)])
        assert small_graph == clone
        other = DiGraph(4, [(0, 1)])
        assert small_graph != other
        assert small_graph != "not a graph"


class TestAdjacency:
    def test_out_neighbors(self, small_graph):
        assert sorted(small_graph.out_neighbors(0).tolist()) == [1, 2]
        assert small_graph.out_neighbors(3).tolist() == []

    def test_in_neighbors(self, small_graph):
        assert sorted(small_graph.in_neighbors(2).tolist()) == [0, 1]
        assert small_graph.in_neighbors(3).tolist() == []

    def test_degrees(self, small_graph):
        assert small_graph.out_degree(0) == 2
        assert small_graph.in_degree(2) == 2
        assert small_graph.in_degree(3) == 0

    def test_degree_vectors_consistent(self, small_graph):
        assert small_graph.in_degrees().sum() == small_graph.n_edges
        assert small_graph.out_degrees().sum() == small_graph.n_edges

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(0, 1)
        assert not small_graph.has_edge(1, 0)

    def test_node_validation(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            small_graph.in_neighbors(10)
        with pytest.raises(NodeNotFoundError):
            small_graph.out_degree(-1)

    def test_edges_iteration_matches_edge_array(self, small_graph):
        iterated = sorted(small_graph.edges())
        from_array = sorted(map(tuple, small_graph.edge_array().tolist()))
        assert iterated == from_array

    def test_nodes_range(self, small_graph):
        assert list(small_graph.nodes()) == [0, 1, 2, 3]


class TestLinearAlgebraViews:
    def test_transition_matrix_columns_sum_to_one_or_zero(self, small_graph):
        p = small_graph.transition_matrix()
        col_sums = np.asarray(p.sum(axis=0)).ravel()
        in_deg = small_graph.in_degrees()
        for node in range(small_graph.n_nodes):
            if in_deg[node] > 0:
                assert col_sums[node] == pytest.approx(1.0)
            else:
                assert col_sums[node] == pytest.approx(0.0)

    def test_transition_matrix_entries(self, small_graph):
        p = small_graph.transition_matrix().toarray()
        # node 2 has in-neighbours {0, 1} so each gets probability 1/2
        assert p[0, 2] == pytest.approx(0.5)
        assert p[1, 2] == pytest.approx(0.5)
        # node 1 has a single in-neighbour 0
        assert p[0, 1] == pytest.approx(1.0)

    def test_adjacency_matrix(self, small_graph):
        a = small_graph.adjacency_matrix().toarray()
        assert a[0, 1] == 1.0
        assert a[1, 0] == 0.0
        assert a.sum() == small_graph.n_edges


class TestDerivedGraphs:
    def test_reverse(self, small_graph):
        rev = small_graph.reverse()
        assert rev.n_edges == small_graph.n_edges
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert np.array_equal(rev.in_degrees(), small_graph.out_degrees())

    def test_subgraph(self, small_graph):
        sub = small_graph.subgraph([0, 1, 2])
        assert sub.n_nodes == 3
        assert sub.n_edges == 4
        sub2 = small_graph.subgraph([2, 0])
        # Edges 2 -> 0 and 0 -> 2 survive; with node order [2, 0] they are
        # relabelled to 0 -> 1 and 1 -> 0.
        assert sub2.n_edges == 2
        assert sub2.has_edge(0, 1)
        assert sub2.has_edge(1, 0)

    def test_networkx_round_trip(self, small_graph):
        nx_graph = small_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        back = DiGraph.from_networkx(nx_graph)
        assert back == small_graph

    def test_from_networkx_with_string_labels(self):
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_edge("b", "a")
        nx_graph.add_edge("a", "c")
        graph = DiGraph.from_networkx(nx_graph)
        assert graph.n_nodes == 3
        assert graph.n_edges == 2

    def test_from_edge_list_infers_node_count(self):
        graph = DiGraph.from_edge_list([(0, 5), (2, 3)])
        assert graph.n_nodes == 6
        assert graph.n_edges == 2


class TestSizeAccounting:
    def test_memory_bytes_positive(self, small_graph):
        assert small_graph.memory_bytes() > 0

    def test_edge_list_bytes_scales_with_edges(self):
        small = DiGraph(10, [(0, 1)])
        larger = DiGraph(10, [(i, (i + 1) % 10) for i in range(10)])
        assert larger.edge_list_bytes() > small.edge_list_bytes()

    def test_edge_list_bytes_empty(self):
        assert DiGraph(5, []).edge_list_bytes() == 0
