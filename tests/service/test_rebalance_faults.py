"""Fault injection for plan migration and plan-generation persistence.

A migration has three failure surfaces, and each must leave the system
serving correct answers:

* a **shard build dying mid-migration** (executor task failure) must leave
  the service byte-for-byte on the old plan — the new lineage is built
  entirely before anything served changes;
* a **crash between the governing-plan write and the shard payloads**
  leaves an inconsistent version on disk; the store must roll back to the
  previous version *under its own plan* on the next load, and a subsequent
  save must replace the orphaned generation file, never adopt it;
* a **corrupt persisted plan generation** excludes its version from the
  consistent set (rollback), while a corrupt *base* plan still fails
  loudly — the lineage's identity is gone, silence would serve garbage.

Plus the resource invariant: a failed migration followed by ``close()``
leaves no resident shared-memory segments behind.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.core.sharding as sharding_module
from repro.config import (
    RebalanceParams,
    ServiceParams,
    ShardingParams,
    SimRankParams,
    UpdateParams,
)
from repro.core.index import ShardedSnapshotStore, SnapshotStore
from repro.errors import CloudWalkerError
from repro.graph import generators
from repro.graph.partition import ShardPlan, load_balanced_plan
from repro.service import (
    PairQuery,
    ShardedQueryService,
    SourceQuery,
    TopKQuery,
)

PARAMS = SimRankParams(c=0.6, walk_steps=4, jacobi_iterations=3,
                       index_walkers=30, query_walkers=80, seed=11)
QUERIES = [PairQuery(3, 7), SourceQuery(12), TopKQuery(5, k=6)]


def _graph(n=100, seed=19):
    return generators.copying_model_graph(n, out_degree=4, seed=seed)


def _service(graph, tmp_path=None, **kwargs):
    update_params = None
    if tmp_path is not None:
        update_params = UpdateParams(snapshot_dir=str(tmp_path))
    return ShardedQueryService.build(
        graph, PARAMS,
        sharding=ShardingParams(num_shards=3, strategy="contiguous"),
        update_params=update_params,
        rebalance_params=RebalanceParams(min_sources=0),
        **kwargs,
    )


def _answers(service):
    return [np.asarray(a).tolist() if isinstance(a, np.ndarray) else a
            for a in service.run_batch(QUERIES)]


def _balanced_plan(graph):
    weights = np.arange(graph.n_nodes, dtype=float) + 1.0
    return load_balanced_plan(3, weights)


class _ShardBuildKilled(RuntimeError):
    pass


# --------------------------------------------------------------------------- #
# Killed shard builds
# --------------------------------------------------------------------------- #
class TestKilledShardBuild:
    def test_failed_build_leaves_old_plan_serving(self, monkeypatch):
        graph = _graph()
        with _service(graph) as service:
            expected = _answers(service)
            old_assignment = service.plan.assign(graph.n_nodes)
            real = sharding_module.run_shard_tasks

            def killer(backend, tasks):
                raise _ShardBuildKilled("shard build killed mid-migration")

            # Kill the migration's re-slice fan-out only: the serve-time
            # scatter resolves `run_shard_tasks` through its own module
            # namespace and keeps working.
            monkeypatch.setattr(sharding_module, "run_shard_tasks", killer)
            with pytest.raises(_ShardBuildKilled):
                service.rebalance(plan=_balanced_plan(graph), force=True)
            monkeypatch.setattr(sharding_module, "run_shard_tasks", real)

            # Nothing served changed: same plan, same generation, same
            # version, same (bitwise) answers, no half-initialised caches.
            assert np.array_equal(service.plan.assign(graph.n_nodes),
                                  old_assignment)
            stats = service.stats()
            assert stats["plan_generation"] == 1
            assert stats["rebalances_applied"] == 0
            assert _answers(service) == expected

    def test_failed_build_then_successful_migration(self, monkeypatch):
        graph = _graph()
        with _service(graph) as service:
            def killer(backend, tasks):
                raise _ShardBuildKilled("shard build killed mid-migration")

            with monkeypatch.context() as patched:
                patched.setattr(sharding_module, "run_shard_tasks", killer)
                with pytest.raises(_ShardBuildKilled):
                    service.rebalance(plan=_balanced_plan(graph), force=True)
            # The service recovers without a restart: updates apply and the
            # retried migration lands.
            assert service.add_edges([(2, 60)]) is not None
            report = service.rebalance(plan=_balanced_plan(graph), force=True)
            assert report["applied"]
            with _service(graph) as reference:
                reference.add_edges([(2, 60)])
                assert _answers(service) == _answers(reference)

    def test_no_shm_leak_after_failed_migration(self, monkeypatch):
        graph = _graph(n=200)
        service = ShardedQueryService.build(
            graph, PARAMS,
            sharding=ShardingParams(num_shards=2),
            service_params=ServiceParams(cache_capacity=0,
                                         serve_backend="processes",
                                         serve_workers=1),
            rebalance_params=RebalanceParams(min_sources=0),
        )
        try:
            service.run_batch(QUERIES)
            handle = service._serve_backend.resident_handle("graph")
            assert handle is not None and handle.shm_name is not None
            name = handle.shm_name

            def killer(backend, tasks):
                raise _ShardBuildKilled("shard build killed mid-migration")

            with monkeypatch.context() as patched:
                patched.setattr(sharding_module, "run_shard_tasks", killer)
                with pytest.raises(_ShardBuildKilled):
                    service.rebalance(plan=ShardPlan(2, strategy="contiguous",
                                                     n_nodes=200), force=True)
        finally:
            service.close()
        with pytest.raises(FileNotFoundError):
            segment = shared_memory.SharedMemory(name=name)
            segment.close()


# --------------------------------------------------------------------------- #
# Crash between the plan write and the shard payloads
# --------------------------------------------------------------------------- #
class TestCrashedPersistence:
    def test_interrupted_save_rolls_back_to_old_plan(self, tmp_path,
                                                     monkeypatch):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            expected = _answers(service)
            base_version = service.index_version

            crashed = SnapshotStore.save_snapshot

            def crash(store_self, *args, **kwargs):
                raise OSError("disk gone mid-save")

            # The migration itself flips in memory; the persistence step
            # dies after the governing plan generation hit the disk but
            # before any shard payload did.
            monkeypatch.setattr(SnapshotStore, "save_snapshot", crash)
            with pytest.raises(OSError):
                service.rebalance(plan=_balanced_plan(graph), force=True)
            monkeypatch.setattr(SnapshotStore, "save_snapshot", crashed)

        store = ShardedSnapshotStore(tmp_path)
        # The new version is inconsistent (no shard has it): rolled back.
        assert store.versions() == [base_version]
        assert store.plan_generation_versions() == [base_version + 1]
        assert store.load_plan().strategy == "contiguous"

        # A cold start serves the previous version under the OLD plan,
        # with identical answers.
        restored = ShardedQueryService.from_snapshot(graph, tmp_path,
                                                     params=PARAMS)
        with restored:
            assert restored.index_version == base_version
            assert restored.plan.strategy == "contiguous"
            assert _answers(restored) == expected

    def test_next_save_replaces_orphaned_generation(self, tmp_path,
                                                    monkeypatch):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()

            def crash(store_self, *args, **kwargs):
                raise OSError("disk gone mid-save")

            with monkeypatch.context() as patched:
                patched.setattr(SnapshotStore, "save_snapshot", crash)
                with pytest.raises(OSError):
                    service.rebalance(plan=_balanced_plan(graph), force=True)
            # The retry (same in-memory plan, same target version) must
            # replace the orphaned generation file and produce a
            # consistent snapshot under the migrated plan.
            version, _ = service.save_snapshot()
            store = ShardedSnapshotStore(tmp_path)
            assert version in store.versions()
            assert store.load_plan(version) == service.plan

    def test_unadopted_generation_never_governs_older_versions(self, tmp_path):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            v1 = service.index_version
            store = ShardedSnapshotStore(tmp_path)
            # Simulate a crashed migration that wrote only the plan file
            # for a version that never became consistent.
            store._save_plan(_balanced_plan(graph), v1 + 1)
            assert store.versions() == [v1]
            # v1 still loads under the base plan, not the orphan.
            assert store.load_plan(v1).strategy == "contiguous"
            _, sharded_index, _ = store.load(v1)
            assert sharded_index.plan.strategy == "contiguous"


# --------------------------------------------------------------------------- #
# Corrupt plan files
# --------------------------------------------------------------------------- #
class TestCorruptPlans:
    def _migrated_lineage(self, graph, tmp_path):
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            expected = _answers(service)
            report = service.rebalance(plan=_balanced_plan(graph), force=True)
            assert report["applied"]
            assert _answers(service) == expected
        return expected

    def test_corrupt_generation_rolls_back_its_version(self, tmp_path):
        graph = _graph()
        expected = self._migrated_lineage(graph, tmp_path)
        store = ShardedSnapshotStore(tmp_path)
        v_old, v_new = store.versions()
        store.plan_path(v_new).write_text("{ not json", encoding="utf-8")
        # The migrated version's governing plan is unreadable: the version
        # vanishes from the consistent set and loads roll back.
        assert store.versions() == [v_old]
        restored = ShardedQueryService.from_snapshot(graph, tmp_path,
                                                     params=PARAMS)
        with restored:
            assert restored.index_version == v_old
            assert restored.plan.strategy == "contiguous"
            assert _answers(restored) == expected

    def test_corrupt_base_plan_fails_loudly(self, tmp_path):
        graph = _graph()
        self._migrated_lineage(graph, tmp_path)
        store = ShardedSnapshotStore(tmp_path)
        (tmp_path / ShardedSnapshotStore.PLAN_FILE).write_text(
            "{ not json", encoding="utf-8")
        with pytest.raises(CloudWalkerError, match="cannot load shard plan"):
            store.versions()
        with pytest.raises(CloudWalkerError, match="cannot load shard plan"):
            ShardedQueryService.from_snapshot(graph, tmp_path, params=PARAMS)


# --------------------------------------------------------------------------- #
# Plan-generation bookkeeping
# --------------------------------------------------------------------------- #
class TestPlanGenerations:
    def test_load_plan_by_version_is_governing(self, tmp_path):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            v1 = service.index_version
            service.rebalance(plan=_balanced_plan(graph), force=True)
            v2 = service.index_version
            service.add_edges([(1, 50)])
            service.save_snapshot()
            v3 = service.index_version
        store = ShardedSnapshotStore(tmp_path)
        assert store.versions() == [v1, v2, v3]
        assert store.load_plan(v1).strategy == "contiguous"
        assert store.load_plan(v2).strategy == "partitioner"
        # v3 wrote no new generation: it is governed by v2's plan.
        assert store.plan_generation_versions() == [v2]
        assert store.load_plan(v3) == store.load_plan(v2)

    def test_shard_count_is_immutable_per_directory(self, tmp_path):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            version = service.index_version
        store = ShardedSnapshotStore(tmp_path)
        with pytest.raises(CloudWalkerError, match="immutable"):
            store._save_plan(ShardPlan(4), version + 1)

    def test_prune_drops_generations_with_their_versions(self, tmp_path):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            service.rebalance(plan=_balanced_plan(graph), force=True)
            migration_version = service.index_version
            for edge in [(1, 50), (2, 60), (3, 70)]:
                service.add_edges([edge])
                service.save_snapshot()
        store = ShardedSnapshotStore(tmp_path, retain=2)
        store.prune()
        remaining = store.versions()
        assert len(remaining) == 2
        assert migration_version not in remaining
        # The migrated plan still governs the survivors even though the
        # generation's own version was pruned... via the generation file,
        # which must therefore survive the prune.
        assert store.plan_generation_versions() == [migration_version]
        assert store.load_plan(remaining[-1]).strategy == "partitioner"

    def test_prune_removes_superseded_generations(self, tmp_path):
        graph = _graph()
        with _service(graph, tmp_path) as service:
            service.save_snapshot()
            service.rebalance(plan=_balanced_plan(graph), force=True)
            first_gen = service.index_version
            # Second migration: the first generation governs only its own
            # version; prune both away and the file must go too.
            service.rebalance(plan=ShardPlan(3, strategy="hash"), force=True)
            for edge in [(1, 50), (2, 60), (3, 70)]:
                service.add_edges([edge])
                service.save_snapshot()
        store = ShardedSnapshotStore(tmp_path, retain=2)
        store.prune()
        assert first_gen not in store.plan_generation_versions()
        assert store.load_plan().strategy == "hash"
