"""Scenario harness — trace replay across workload shapes + accuracy budget.

Every other serving benchmark drives one workload shape (uniform batches);
this one replays the full scenario registry
(:data:`repro.service.scenarios.TRACE_GENERATORS` — uniform, Zipf-skewed,
bursty, adversarial update storms, multi-tenant interleaving) against the
sharded service and gates two properties:

* **exact-mode identity**: every scenario's answer checksum on the sharded
  service equals the single-shard ``QueryService`` reference — the serving
  stack's bitwise contract holds on every workload shape, updates included;
* **approximate-mode budget**: with ``ServiceParams.accuracy_budget`` set,
  the calibrated reduced-walker operating point must realize a mean error
  within the declared budget on every replayed scenario *and* improve p99
  batch latency by >= 1.5x on at least one scenario.

The per-scenario records (``result["scenarios"]``) feed the consolidated
``BENCH_serving.json`` trajectory table via ``run_all.consolidate_serving``.

Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
"""

GRAPH_NODES = 1_200
OUT_DEGREE = 5
WALK_STEPS = 5
INDEX_WALKERS = 25
QUERY_WALKERS = 1_000
NUM_SHARDS = 4
N_EVENTS = 120
BATCH_SIZE = 32
ACCURACY_BUDGET = 0.05
APPROX_SCENARIOS = ("zipf", "bursty")
MIN_P99_IMPROVEMENT = 1.5
SEED = 29


def _params():
    from repro.config import SimRankParams

    return SimRankParams(
        c=0.6, walk_steps=WALK_STEPS, jacobi_iterations=3,
        index_walkers=INDEX_WALKERS, query_walkers=QUERY_WALKERS, seed=SEED,
    )


def _traces(n_nodes):
    from repro.service import scenarios

    return {
        name: generator(n_nodes, n_events=N_EVENTS, seed=SEED)
        for name, generator in scenarios.TRACE_GENERATORS.items()
    }


def _replay(service, trace, reference=None):
    from repro.service import scenarios

    options = scenarios.ReplayOptions(batch_size=BATCH_SIZE)
    try:
        return scenarios.replay_trace(service, trace, options,
                                      reference=reference)
    finally:
        service.close()


def scenarios_experiment():
    from repro.analysis.accuracy import (
        calibrate_query_budget,
        exact_linearized_matrix,
    )
    from repro.config import ServiceParams, ShardingParams
    from repro.core.diagonal import build_diagonal_index
    from repro.graph import generators
    from repro.service import QueryService, ShardedQueryService

    params = _params()
    graph = generators.copying_model_graph(
        GRAPH_NODES, out_degree=OUT_DEGREE, seed=SEED, name="scenarios"
    )
    index = build_diagonal_index(graph, params)
    traces = _traces(graph.n_nodes)
    sharding = ShardingParams(num_shards=NUM_SHARDS)

    # --- exact mode: sharded vs single-shard reference, every scenario ---
    rows, records = [], []
    all_identical = True
    exact_p99 = {}
    for name, trace in sorted(traces.items()):
        single = _replay(QueryService(graph, index, params), trace)
        sharded = _replay(
            ShardedQueryService(graph, index, params, sharding=sharding),
            trace,
        )
        identical = (sharded.answer_checksum == single.answer_checksum
                     and sharded.versions_monotonic)
        all_identical &= identical
        exact_p99[name] = sharded.p99_latency_seconds
        records.append(sharded.to_record())
        rows.append({
            "scenario": name,
            "queries": sharded.n_queries,
            "updates": sharded.n_updates,
            "qps": round(sharded.qps, 1),
            "p50_ms": round(sharded.p50_latency_seconds * 1e3, 3),
            "p99_ms": round(sharded.p99_latency_seconds * 1e3, 3),
            "cache_hit_rate": round(sharded.cache_hit_rate, 3),
            "bitwise_identical": identical,
        })

    # --- approximate mode: calibrated budget on the query-only shapes ---
    # (update scenarios would invalidate the precomputed ground truth).
    reference = exact_linearized_matrix(graph, params)
    calibration = calibrate_query_budget(graph, index, params,
                                         ACCURACY_BUDGET)
    approx_service_params = ServiceParams(
        accuracy_budget=ACCURACY_BUDGET,
        approx_walkers=calibration.walkers,
        approx_steps=calibration.walk_steps,
    )
    approx_rows = []
    within_budget = True
    improvements = []
    for name in APPROX_SCENARIOS:
        approx = _replay(
            ShardedQueryService(graph, index, params, approx_service_params,
                                sharding=sharding),
            traces[name], reference=reference,
        )
        records.append(approx.to_record())
        improvement = exact_p99[name] / max(approx.p99_latency_seconds, 1e-9)
        improvements.append(improvement)
        within = (approx.realized_mean_error is not None
                  and approx.realized_mean_error <= ACCURACY_BUDGET)
        within_budget &= within
        approx_rows.append({
            "scenario": name,
            "exact_p99_ms": round(exact_p99[name] * 1e3, 3),
            "approx_p99_ms": round(approx.p99_latency_seconds * 1e3, 3),
            "p99_improvement": round(improvement, 2),
            "realized_mean_error": round(approx.realized_mean_error, 5),
            "budget": ACCURACY_BUDGET,
            "within_budget": within,
        })

    best_improvement = max(improvements)
    return {
        "rows": rows,
        "approx_rows": approx_rows,
        "scenarios": records,
        "all_identical": all_identical,
        "approx_within_budget": within_budget,
        "approx_p99_improvement": best_improvement,
        "gate_passed": bool(within_budget
                            and best_improvement >= MIN_P99_IMPROVEMENT),
        "accuracy_budget": ACCURACY_BUDGET,
        "calibration": calibration.to_dict(),
        "graph_nodes": graph.n_nodes,
        "graph_edges": graph.n_edges,
        "num_shards": NUM_SHARDS,
        "n_events": N_EVENTS,
        "batch_size": BATCH_SIZE,
    }


def _check_and_render(result) -> str:
    from repro.bench import reporting

    rendered = reporting.format_table(
        result["rows"],
        title=(f"Scenario replay on a {result['graph_nodes']}-node graph "
               f"({result['num_shards']} shards, {result['n_events']} events "
               "per trace; sharded vs single-shard reference)"),
    )
    rendered += "\n" + reporting.format_table(
        result["approx_rows"],
        title=(f"Approximate serving at accuracy budget "
               f"{result['accuracy_budget']} (calibrated to "
               f"{result['calibration']['walkers']} walkers x "
               f"{result['calibration']['walk_steps']} steps)"),
    )
    assert len(result["rows"]) >= 4, (
        f"scenario sweep shrank to {len(result['rows'])} shapes (needs >= 4)"
    )
    assert result["all_identical"], (
        "an exact-mode scenario replay diverged bitwise from the "
        "single-shard reference"
    )
    assert result["approx_within_budget"], (
        "an approximate replay exceeded its declared accuracy budget"
    )
    assert result["approx_p99_improvement"] >= MIN_P99_IMPROVEMENT, (
        f"approximate mode improved p99 only "
        f"{result['approx_p99_improvement']:.2f}x "
        f"(needs >= {MIN_P99_IMPROVEMENT}x on at least one scenario)"
    )
    return rendered


def test_scenarios(benchmark, results_dir):
    from repro.bench import reporting

    result = benchmark.pedantic(scenarios_experiment, rounds=1, iterations=1)
    rendered = _check_and_render(result)
    reporting.save_results("scenarios", result, rendered, results_dir)
    print("\n" + rendered)


if __name__ == "__main__":
    from repro.bench import reporting

    outcome = scenarios_experiment()
    rendered = _check_and_render(outcome)
    reporting.save_results("scenarios", outcome, rendered)
    print(rendered)
    print(f"exact identical on {len(outcome['rows'])} scenarios: "
          f"{outcome['all_identical']}; approx p99 improvement "
          f"{outcome['approx_p99_improvement']:.1f}x within budget: "
          f"{outcome['approx_within_budget']}")
