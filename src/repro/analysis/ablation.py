"""Parameter ablations for CloudWalker's design choices.

docs/DESIGN.md lists the design choices worth ablating: the number of index
walkers R, the query walker budget R', the walk truncation T, the number of
Jacobi iterations L, and the solver used for the linear system.  Each sweep
here builds the relevant part of the pipeline across a range of values and
reports accuracy (against the exact pipeline) and cost, as tidy row dicts
ready for :func:`repro.bench.reporting.format_table`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import accuracy
from repro.config import SimRankParams
from repro.core.diagonal import DiagonalEstimator, exact_diagonal
from repro.core.exact import linearized_simrank_matrix, simrank_accuracy
from repro.core.queries import QueryEngine
from repro.graph.digraph import DiGraph


def _reference(graph: DiGraph, params: SimRankParams) -> np.ndarray:
    return linearized_simrank_matrix(graph, exact_diagonal(graph, params), params)


def index_walker_sweep(
    graph: DiGraph,
    walker_counts: Sequence[int],
    params: Optional[SimRankParams] = None,
) -> List[Dict[str, Any]]:
    """Accuracy/cost of the offline index as R varies (paper default R=100)."""
    params = params or SimRankParams.paper_defaults()
    reference_diag = exact_diagonal(graph, params)
    reference_matrix = _reference(graph, params)
    rows = []
    for walkers in walker_counts:
        run_params = params.with_(index_walkers=int(walkers))
        start = time.perf_counter()
        index = DiagonalEstimator(graph, params=run_params).build()
        elapsed = time.perf_counter() - start
        matrix = linearized_simrank_matrix(graph, index.diagonal, run_params)
        error = simrank_accuracy(reference_matrix, matrix)
        rows.append(
            {
                "index_walkers": int(walkers),
                "build_seconds": elapsed,
                "diag_mean_abs_error": float(
                    np.abs(index.diagonal - reference_diag).mean()
                ),
                "simrank_mean_abs_error": error["mean_abs_error"],
            }
        )
    return rows


def walk_steps_sweep(
    graph: DiGraph,
    step_counts: Sequence[int],
    params: Optional[SimRankParams] = None,
    reference_steps: int = 15,
) -> List[Dict[str, Any]]:
    """Truncation ablation: accuracy/cost as the walk length T varies.

    The reference is the exact pipeline with a longer truncation
    (``reference_steps``), so the sweep isolates the truncation error the
    paper's T=10 default accepts.
    """
    params = params or SimRankParams.paper_defaults()
    reference_params = params.with_(walk_steps=int(reference_steps))
    reference_matrix = _reference(graph, reference_params)
    rows = []
    for steps in step_counts:
        run_params = params.with_(walk_steps=int(steps))
        start = time.perf_counter()
        index = DiagonalEstimator(graph, params=run_params, exact=True).build()
        elapsed = time.perf_counter() - start
        matrix = linearized_simrank_matrix(graph, index.diagonal, run_params)
        error = simrank_accuracy(reference_matrix, matrix)
        rows.append(
            {
                "walk_steps": int(steps),
                "build_seconds": elapsed,
                "simrank_mean_abs_error": error["mean_abs_error"],
                "simrank_max_abs_error": error["max_abs_error"],
            }
        )
    return rows


def query_walker_sweep(
    graph: DiGraph,
    walker_counts: Sequence[int],
    params: Optional[SimRankParams] = None,
    n_pairs: int = 30,
    seed: int = 3,
) -> List[Dict[str, Any]]:
    """Online-query ablation: MCSP accuracy/latency as R' varies."""
    params = params or SimRankParams.paper_defaults()
    index = DiagonalEstimator(graph, params=params, exact=True).build()
    engine = QueryEngine(graph, index, params)
    reference_matrix = linearized_simrank_matrix(graph, index.diagonal, params)
    pairs = accuracy.sample_pairs(graph, n_pairs, seed=seed)
    rows = []
    for walkers in walker_counts:
        start = time.perf_counter()
        report = accuracy.evaluate_pairs(
            lambda i, j: engine.single_pair(i, j, walkers=int(walkers)),
            reference_matrix, pairs, estimator_name=f"MCSP(R'={walkers})",
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "query_walkers": int(walkers),
                "mean_abs_error": report.mean_abs_error,
                "max_abs_error": report.max_abs_error,
                "mean_query_seconds": elapsed / max(len(pairs), 1),
            }
        )
    return rows


def solver_sweep(
    graph: DiGraph,
    params: Optional[SimRankParams] = None,
    solvers: Sequence[str] = ("jacobi", "gauss-seidel", "exact"),
) -> List[Dict[str, Any]]:
    """Solver ablation on the exact linear system (isolates solver error)."""
    params = params or SimRankParams.paper_defaults()
    reference_diag = exact_diagonal(graph, params)
    rows = []
    for solver in solvers:
        start = time.perf_counter()
        index = DiagonalEstimator(graph, params=params, exact=True, solver=solver).build()
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "solver": solver,
                "build_seconds": elapsed,
                "diag_mean_abs_error": float(
                    np.abs(index.diagonal - reference_diag).mean()
                ),
                "residual": index.build_info.jacobi_residual,
            }
        )
    return rows
