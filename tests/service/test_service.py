"""QueryService behaviour: batch semantics, core equivalence, accounting."""

import numpy as np
import pytest

from repro.config import ServiceParams
from repro.core import montecarlo
from repro.errors import CloudWalkerError, ConfigurationError, NodeNotFoundError
from repro.service import PairQuery, QueryService, SourceQuery, TopKQuery


class TestBatchSemantics:
    def test_answers_align_with_query_order(self, make_service):
        service = make_service()
        answers = service.run_batch([
            PairQuery(3, 9), SourceQuery(3), TopKQuery(9, k=4), PairQuery(2, 2),
        ])
        assert isinstance(answers[0], float)
        assert isinstance(answers[1], np.ndarray)
        assert isinstance(answers[2], list) and len(answers[2]) == 4
        assert answers[3] == 1.0

    def test_batch_matches_single_query_paths(self, make_service):
        batch_service = make_service()
        single_service = make_service()
        queries = [PairQuery(3, 9), SourceQuery(7), TopKQuery(5, k=3)]
        batched = batch_service.run_batch(queries)
        assert single_service.single_pair(3, 9) == batched[0]
        assert np.array_equal(single_service.single_source(7), batched[1])
        assert single_service.top_k(5, k=3) == batched[2]

    def test_chunked_batch_identical_to_unchunked(self, make_service):
        chunked = make_service(max_batch_size=2)
        unchunked = make_service(max_batch_size=256)
        queries = [SourceQuery(node) for node in range(9)]
        left = chunked.run_batch(queries)
        right = unchunked.run_batch(queries)
        for a, b in zip(left, right):
            assert np.array_equal(a, b)

    def test_symmetry_within_batch(self, make_service):
        service = make_service()
        forward, backward = service.run_batch([PairQuery(3, 9), PairQuery(9, 3)])
        assert forward == backward

    def test_empty_batch(self, make_service):
        assert make_service().run_batch([]) == []


class TestCoreEquivalence:
    """Service answers are bitwise-equal to direct core computations."""

    def test_pair_matches_direct_core_call(
        self, make_service, service_graph, service_params, direct_engine
    ):
        service = make_service()
        dist_3 = montecarlo.estimate_walk_distributions(service_graph, 3, service_params)
        dist_9 = montecarlo.estimate_walk_distributions(service_graph, 9, service_params)
        expected = direct_engine.combine_pair(dist_3, dist_9)
        assert service.single_pair(3, 9) == expected

    def test_source_matches_direct_core_call(
        self, make_service, service_graph, service_params, direct_engine
    ):
        service = make_service()
        dist = montecarlo.estimate_walk_distributions(service_graph, 7, service_params)
        expected = direct_engine.propagate_source(7, dist)
        assert np.array_equal(service.single_source(7), expected)

    def test_topk_matches_engine_ranking_of_same_scores(self, make_service):
        service = make_service()
        from repro.core.queries import rank_top_k

        scores = service.single_source(5)
        assert service.top_k(5, k=6) == rank_top_k(scores, 5, 6)

    def test_walkers_override_matches_direct_core_call(
        self, make_service, service_graph, service_params, direct_engine
    ):
        service = make_service()
        dist_3 = montecarlo.estimate_walk_distributions(
            service_graph, 3, service_params, walkers=64
        )
        dist_9 = montecarlo.estimate_walk_distributions(
            service_graph, 9, service_params, walkers=64
        )
        expected = direct_engine.combine_pair(dist_3, dist_9)
        assert service.single_pair(3, 9, walkers=64) == expected
        # Different walker budgets live under different cache keys.
        assert service.stats()["cache_size"] == 2

    def test_restart_reproduces_answers(self, make_service):
        first = make_service()
        second = make_service()
        assert first.single_pair(3, 9) == second.single_pair(3, 9)
        assert np.array_equal(first.single_source(7), second.single_source(7))


class TestValidationAndAccounting:
    def test_unknown_node_rejected_before_execution(self, make_service):
        service = make_service()
        with pytest.raises(NodeNotFoundError):
            service.run_batch([PairQuery(0, 10_000)])
        with pytest.raises(NodeNotFoundError):
            service.single_source(-1)
        assert service.stats()["queries"] == 0

    def test_invalid_k_rejected(self, make_service):
        with pytest.raises(CloudWalkerError):
            make_service().run_batch([TopKQuery(3, k=0)])

    def test_mismatched_index_rejected(self, service_index, service_params):
        from repro.graph import generators

        other_graph = generators.cycle_graph(12)
        with pytest.raises(CloudWalkerError):
            QueryService(other_graph, service_index, service_params)

    def test_invalid_service_params_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceParams(cache_capacity=-1)
        with pytest.raises(ConfigurationError):
            ServiceParams(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            ServiceParams(default_top_k=0)

    def test_self_pair_needs_no_simulation(self, make_service):
        service = make_service()
        assert service.single_pair(4, 4) == 1.0
        stats = service.stats()
        assert stats["sources_simulated"] == 0 and stats["cache_size"] == 0

    def test_stats_counters(self, make_service):
        service = make_service()
        service.run_batch([
            PairQuery(3, 9), PairQuery(3, 9), SourceQuery(3), TopKQuery(9, k=2),
        ])
        stats = service.stats()
        assert stats["queries"] == 4 and stats["batches"] == 1
        assert stats["pair_queries"] == 2
        assert stats["source_queries"] == 1 and stats["topk_queries"] == 1
        # 6 source references collapse onto 2 distinct simulations.
        assert stats["sources_simulated"] == 2
        assert stats["sources_deduplicated"] == 4

    def test_repr_mentions_traffic(self, make_service):
        service = make_service()
        service.single_pair(1, 2)
        assert "queries=1" in repr(service)
