"""Tests for the ablation sweeps and index validation."""

import numpy as np
import pytest

from repro.analysis import ablation
from repro.analysis.validation import ValidationIssue, validate_index
from repro.config import SimRankParams
from repro.core.diagonal import build_diagonal_index
from repro.core.index import BuildInfo, DiagonalIndex
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(45, out_degree=4, seed=29)


@pytest.fixture(scope="module")
def params():
    return SimRankParams(c=0.6, walk_steps=5, jacobi_iterations=4,
                         index_walkers=100, query_walkers=400, seed=6)


class TestAblationSweeps:
    def test_index_walker_sweep_monotone_error(self, graph, params):
        rows = ablation.index_walker_sweep(graph, [20, 500], params=params)
        assert [row["index_walkers"] for row in rows] == [20, 500]
        assert rows[1]["diag_mean_abs_error"] <= rows[0]["diag_mean_abs_error"]
        assert all(row["build_seconds"] > 0 for row in rows)

    def test_walk_steps_sweep_truncation_error_shrinks(self, graph, params):
        rows = ablation.walk_steps_sweep(graph, [1, 8], params=params, reference_steps=12)
        assert rows[1]["simrank_mean_abs_error"] <= rows[0]["simrank_mean_abs_error"]

    def test_query_walker_sweep(self, graph, params):
        rows = ablation.query_walker_sweep(graph, [20, 2000], params=params, n_pairs=10)
        assert rows[1]["mean_abs_error"] <= rows[0]["mean_abs_error"] + 1e-9
        assert all(row["mean_query_seconds"] > 0 for row in rows)

    def test_solver_sweep_contains_all_solvers(self, graph, params):
        rows = ablation.solver_sweep(graph, params=params)
        assert {row["solver"] for row in rows} == {"jacobi", "gauss-seidel", "exact"}
        by_solver = {row["solver"]: row for row in rows}
        assert by_solver["exact"]["diag_mean_abs_error"] == pytest.approx(0.0, abs=1e-9)


class TestValidation:
    def test_valid_index_passes(self, graph, params):
        index = build_diagonal_index(graph, params)
        report = validate_index(graph, index, spot_check_pairs=10)
        assert report.ok
        assert not report.errors()
        assert "diag_min" in report.checks
        assert "spot_check_mean_abs_error" in report.checks

    def test_node_count_mismatch_is_error(self, graph, params):
        index = build_diagonal_index(graph, params)
        other = generators.cycle_graph(10)
        report = validate_index(other, index)
        assert not report.ok
        assert report.errors()

    def test_nonpositive_diagonal_is_error(self, graph, params):
        bad_diag = np.full(graph.n_nodes, 0.5)
        bad_diag[3] = -0.1
        index = DiagonalIndex(
            diagonal=bad_diag, params=params, graph_name=graph.name,
            n_nodes=graph.n_nodes, n_edges=graph.n_edges,
            build_info=BuildInfo(jacobi_residual=0.01),
        )
        report = validate_index(graph, index, spot_check_pairs=0)
        assert not report.ok

    def test_large_residual_is_warning(self, graph, params):
        index = build_diagonal_index(graph, params)
        index.build_info.jacobi_residual = 0.5
        report = validate_index(graph, index, spot_check_pairs=0)
        assert report.ok
        assert report.warnings()

    def test_zero_in_degree_deviation_warning(self, params):
        from repro.graph.digraph import DiGraph

        chain = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        index = build_diagonal_index(chain, params)
        # Corrupt the entry for the source node (no in-links -> must be 1.0).
        index.diagonal[0] = 0.3
        report = validate_index(chain, index, spot_check_pairs=0)
        assert any("no in-links" in issue.message for issue in report.warnings())

    def test_issue_str(self):
        issue = ValidationIssue("warning", "something")
        assert "warning" in str(issue)
        assert "something" in str(issue)
