"""Unit tests for graph sampling."""

import pytest

from repro.errors import ConfigurationError
from repro.graph import generators, sampling
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def graph():
    return generators.copying_model_graph(300, out_degree=6, seed=13)


class TestRandomNodeSample:
    def test_size(self, graph):
        sample = sampling.random_node_sample(graph, 0.25, seed=1)
        assert sample.n_nodes == 75
        assert sample.n_edges <= graph.n_edges

    def test_deterministic(self, graph):
        assert sampling.random_node_sample(graph, 0.2, seed=3) == \
            sampling.random_node_sample(graph, 0.2, seed=3)

    def test_full_fraction_keeps_all_nodes(self, graph):
        sample = sampling.random_node_sample(graph, 1.0, seed=1)
        assert sample.n_nodes == graph.n_nodes

    def test_invalid_fraction(self, graph):
        with pytest.raises(ConfigurationError):
            sampling.random_node_sample(graph, 0.0)
        with pytest.raises(ConfigurationError):
            sampling.random_node_sample(graph, 1.5)


class TestRandomEdgeSample:
    def test_keeps_all_nodes(self, graph):
        sample = sampling.random_edge_sample(graph, 0.3, seed=2)
        assert sample.n_nodes == graph.n_nodes
        assert 0 < sample.n_edges < graph.n_edges

    def test_expected_edge_count(self, graph):
        sample = sampling.random_edge_sample(graph, 0.5, seed=2)
        assert abs(sample.n_edges - 0.5 * graph.n_edges) < 0.15 * graph.n_edges

    def test_empty_graph(self):
        empty = DiGraph(5, [])
        sample = sampling.random_edge_sample(empty, 0.5, seed=1)
        assert sample.n_nodes == 5
        assert sample.n_edges == 0


class TestForestFireSample:
    def test_target_size_reached(self, graph):
        sample = sampling.forest_fire_sample(graph, 60, seed=4)
        assert sample.n_nodes == 60

    def test_target_larger_than_graph_clamped(self, graph):
        sample = sampling.forest_fire_sample(graph, 10_000, seed=4)
        assert sample.n_nodes == graph.n_nodes

    def test_preserves_some_edges(self, graph):
        sample = sampling.forest_fire_sample(graph, 100, seed=5)
        assert sample.n_edges > 0

    def test_invalid_arguments(self, graph):
        with pytest.raises(ConfigurationError):
            sampling.forest_fire_sample(graph, 0)
        with pytest.raises(ConfigurationError):
            sampling.forest_fire_sample(graph, 10, forward_prob=1.5)
        with pytest.raises(ConfigurationError):
            sampling.forest_fire_sample(DiGraph(0, []), 5)


class TestDegreePreservingSizes:
    def test_sizes_grow_with_fractions(self, graph):
        samples = sampling.degree_preserving_sizes(graph, [0.1, 0.3, 0.6], seed=6)
        sizes = [sample.n_nodes for sample in samples]
        assert sizes == sorted(sizes)
        assert len(samples) == 3

    def test_invalid_fraction_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            sampling.degree_preserving_sizes(graph, [0.5, 2.0])
