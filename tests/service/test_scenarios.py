"""The scenario harness: trace model, generators and the replay driver.

Three contracts are pinned here:

* **wire round-trips** — every generator's every event survives
  ``TraceEvent -> JSONL -> parse_trace_line`` bitwise, and malformed
  lines fail loudly with their line number (the ``parse_edge`` contract);
* **seeded determinism** — the same trace replayed twice on freshly
  built services yields identical answer checksums and identical
  rebalance decisions, in exact and in approximate mode;
* **exact-mode identity** — a sharded replay's checksum equals the
  single-shard reference's on every scenario shape, update storms
  included (approximate mode must *diverge* from it).
"""

import json

import pytest

from repro.config import RebalanceParams, ServiceParams, ShardingParams
from repro.errors import ConfigurationError, WireFormatError
from repro.service import (
    QueryService,
    ReplayOptions,
    ShardedQueryService,
    Trace,
    TraceEvent,
    generate_trace,
    parse_trace_line,
    read_trace,
    replay_trace,
    trace_from_lines,
    write_records,
    write_trace,
)
from repro.service.scenarios import TRACE_GENERATORS

N_NODES = 120  # matches the shared service_graph fixture


# --------------------------------------------------------------------------- #
# Satellite 1: serialization round-trips + loud failures
# --------------------------------------------------------------------------- #
class TestTraceRoundTrip:
    @pytest.mark.parametrize("scenario", sorted(TRACE_GENERATORS))
    def test_every_generator_event_round_trips_bitwise(self, scenario):
        trace = generate_trace(scenario, N_NODES, n_events=40, seed=7)
        assert trace.events, scenario
        for event in trace.events:
            line = event.to_json()
            parsed = parse_trace_line(line)
            assert parsed == event
            assert parsed.to_json() == line

    @pytest.mark.parametrize("scenario", sorted(TRACE_GENERATORS))
    def test_write_then_read_reproduces_the_trace(self, scenario, tmp_path):
        trace = generate_trace(scenario, N_NODES, n_events=30, seed=3)
        path = tmp_path / f"{scenario}.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == trace.name
        assert loaded.meta == trace.meta
        assert loaded.events == trace.events
        # ... and the file itself is stable under a rewrite.
        rewritten = tmp_path / "again.jsonl"
        write_trace(loaded, rewritten)
        assert rewritten.read_bytes() == path.read_bytes()

    def test_both_event_kinds_round_trip(self):
        query = TraceEvent(at=0.5, kind="query", query="topk 3 5",
                           tenant="tenant-1")
        update = TraceEvent(at=1.0, kind="update", edges=((0, 1), (7, 3)))
        for event in (query, update):
            assert parse_trace_line(event.to_json()) == event

    def test_headerless_lines_parse_with_the_default_name(self):
        lines = [TraceEvent(at=0.0, kind="query", query="pair 1 2").to_json()]
        trace = trace_from_lines(lines)
        assert trace.name == "trace"
        assert trace.n_queries == 1

    def test_blank_lines_are_skipped(self, tmp_path):
        trace = generate_trace("uniform", N_NODES, n_events=5, seed=1)
        path = tmp_path / "padded.jsonl"
        write_trace(trace, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace("\n", "\n\n"), encoding="utf-8")
        assert read_trace(path).events == trace.events


class TestMalformedLinesFailLoudly:
    def test_not_json(self):
        with pytest.raises(WireFormatError, match=r"trace line 9: not valid"):
            parse_trace_line("{nope", line_number=9)

    def test_non_object(self):
        with pytest.raises(WireFormatError,
                           match=r"trace line 2: expected a JSON object"):
            parse_trace_line("[1, 2]", line_number=2)

    def test_unknown_fields(self):
        line = json.dumps({"at": 0.0, "kind": "query", "query": "pair 1 2",
                           "surprise": True})
        with pytest.raises(WireFormatError,
                           match=r"trace line 4: unexpected fields.*surprise"):
            parse_trace_line(line, line_number=4)

    def test_unknown_kind(self):
        line = json.dumps({"at": 0.0, "kind": "snapshot"})
        with pytest.raises(WireFormatError,
                           match=r"trace line 1: unknown event kind"):
            parse_trace_line(line, line_number=1)

    @pytest.mark.parametrize("at", [-1.0, "soon", None, float("nan")])
    def test_bad_timestamps(self, at):
        with pytest.raises(WireFormatError, match="timestamp"):
            TraceEvent(at=at, kind="query", query="pair 1 2")

    def test_query_event_grammar_is_enforced(self):
        with pytest.raises(WireFormatError):
            TraceEvent(at=0.0, kind="query", query="frobnicate 1 2")
        with pytest.raises(WireFormatError, match="needs a wire-format"):
            TraceEvent(at=0.0, kind="query", query=None)
        with pytest.raises(WireFormatError, match="must not carry edges"):
            TraceEvent(at=0.0, kind="query", query="pair 1 2",
                       edges=((0, 1),))

    @pytest.mark.parametrize("edges", [
        (), ((0,),), (("a", 1),), ((True, 2),), ((-1, 2),), "0 1",
    ])
    def test_bad_update_edges(self, edges):
        with pytest.raises(WireFormatError):
            TraceEvent(at=0.0, kind="update", edges=edges)

    def test_update_event_must_not_carry_a_query(self):
        with pytest.raises(WireFormatError, match="must not carry a query"):
            TraceEvent(at=0.0, kind="update", edges=((0, 1),),
                       query="pair 1 2")

    def test_decreasing_timestamps_are_rejected(self):
        events = (TraceEvent(at=2.0, kind="query", query="pair 1 2"),
                  TraceEvent(at=1.0, kind="query", query="pair 2 1"))
        with pytest.raises(WireFormatError,
                           match=r"event 1 timestamp 1\.0 decreases"):
            Trace(name="bad", events=events)

    def test_file_errors_name_the_path_and_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        good = TraceEvent(at=0.0, kind="query", query="pair 1 2").to_json()
        path.write_text(good + "\n{nope\n", encoding="utf-8")
        with pytest.raises(WireFormatError,
                           match=r"broken\.jsonl: trace line 2"):
            read_trace(path)

    def test_bad_header_fields_are_rejected(self):
        header = json.dumps({"kind": "trace", "name": "t", "extra": 1})
        with pytest.raises(WireFormatError, match="unexpected header fields"):
            trace_from_lines([header])
        with pytest.raises(WireFormatError, match="header name"):
            trace_from_lines([json.dumps({"kind": "trace", "name": ""})])
        with pytest.raises(WireFormatError, match="header meta"):
            trace_from_lines([json.dumps({"kind": "trace", "name": "t",
                                          "meta": [1]})])


class TestGenerators:
    @pytest.mark.parametrize("scenario", sorted(TRACE_GENERATORS))
    def test_same_seed_same_trace_different_seed_differs(self, scenario):
        first = generate_trace(scenario, N_NODES, n_events=40, seed=11)
        again = generate_trace(scenario, N_NODES, n_events=40, seed=11)
        other = generate_trace(scenario, N_NODES, n_events=40, seed=12)
        assert first.events == again.events
        assert first.events != other.events

    def test_update_storm_interleaves_updates(self):
        trace = generate_trace("update_storm", N_NODES, n_events=50,
                               storm_every=10, seed=2)
        assert trace.n_updates == 5
        assert trace.n_queries == 50

    def test_multi_tenant_labels_every_stream(self):
        trace = generate_trace("multi_tenant", N_NODES, n_events=30,
                               tenants=3, seed=2)
        assert {event.tenant for event in trace.events} == {
            "tenant-0", "tenant-1", "tenant-2"
        }

    def test_unknown_scenario_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            generate_trace("tsunami", N_NODES)

    def test_bad_mix_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="mix"):
            generate_trace("uniform", N_NODES, mix=(1.0, -0.5, 0.5))


# --------------------------------------------------------------------------- #
# Satellite 2: seeded replay determinism (exact + approximate)
# --------------------------------------------------------------------------- #
@pytest.fixture()
def make_sharded(service_graph, service_index, service_params):
    """A fresh sharded service per call (fresh caches, fresh load stats)."""

    def factory(service_overrides=None, **sharding_overrides):
        sharding_overrides.setdefault("num_shards", 3)
        return ShardedQueryService(
            service_graph, service_index, service_params,
            service_overrides,
            sharding=ShardingParams(**sharding_overrides),
        )

    return factory


class TestReplayDeterminism:
    def test_exact_replay_matches_single_shard_on_an_update_storm(
            self, make_service, make_sharded):
        trace = generate_trace("update_storm", N_NODES, n_events=24,
                               storm_every=8, seed=5)
        options = ReplayOptions(batch_size=8)
        single = replay_trace(make_service(), trace, options)
        sharded_one = replay_trace(make_sharded(), trace, options)
        sharded_two = replay_trace(make_sharded(), trace, options)
        assert sharded_one.answer_checksum == single.answer_checksum
        assert sharded_two.answer_checksum == single.answer_checksum
        assert single.versions_monotonic and sharded_one.versions_monotonic
        assert sharded_one.index_versions[1] > sharded_one.index_versions[0]
        assert single.mode == "exact" and single.accuracy_budget is None

    def test_rebalance_decisions_are_deterministic(self, service_graph,
                                                   service_index,
                                                   service_params):
        trace = generate_trace("zipf", N_NODES, n_events=24, seed=9)
        options = ReplayOptions(batch_size=6, rebalance_every=2)
        results = []
        for _ in range(2):
            service = ShardedQueryService(
                service_graph, service_index, service_params,
                sharding=ShardingParams(num_shards=3, strategy="contiguous"),
                rebalance_params=RebalanceParams(min_sources=1,
                                                 improvement_threshold=1.01),
            )
            results.append(replay_trace(service, trace, options))
        first, second = results
        assert first.answer_checksum == second.answer_checksum
        assert first.rebalance_decisions == second.rebalance_decisions
        assert len(first.rebalance_decisions) == first.n_batches // 2

    def test_batches_split_on_size_window_and_updates(self, make_service):
        query = TraceEvent(at=0.0, kind="query", query="pair 1 2")
        events = [query] * 5 + [
            TraceEvent(at=0.0, kind="update", edges=((0, 1),))
        ] + [TraceEvent(at=5.0, kind="query", query="pair 1 2")] * 3
        trace = Trace(name="grouping", events=tuple(events))
        # batch_size=2: ceil(5/2) + ceil(3/2) = 5 batches around the update.
        result = replay_trace(make_service(), trace,
                              ReplayOptions(batch_size=2))
        assert result.n_batches == 5
        assert result.n_updates == 1
        # A tight batch_window may only split batches further.
        windowed = replay_trace(
            make_service(),
            Trace(name="w", events=tuple(
                TraceEvent(at=float(i), kind="query", query="pair 1 2")
                for i in range(4)
            )),
            ReplayOptions(batch_size=10, batch_window=0.5),
        )
        assert windowed.n_batches == 4

    def test_approximate_replay_is_deterministic_and_diverges_from_exact(
            self, make_service, make_sharded):
        trace = generate_trace("zipf", N_NODES, n_events=20, seed=4)
        options = ReplayOptions(batch_size=8)
        exact = replay_trace(make_sharded(), trace, options)
        approx_params = ServiceParams(accuracy_budget=0.1, approx_walkers=40,
                                      approx_steps=3)
        approx_one = replay_trace(make_sharded(approx_params), trace, options)
        approx_two = replay_trace(make_sharded(approx_params), trace, options)
        assert approx_one.mode == "approximate"
        assert approx_one.accuracy_budget == 0.1
        assert approx_one.answer_checksum == approx_two.answer_checksum
        assert approx_one.answer_checksum != exact.answer_checksum
        # A single-shard approximate service answers identically too.
        single = replay_trace(make_service(accuracy_budget=0.1,
                                           approx_walkers=40, approx_steps=3),
                              trace, options)
        assert single.answer_checksum == approx_one.answer_checksum

    def test_records_append_as_parseable_jsonl(self, make_service, tmp_path):
        trace = generate_trace("uniform", N_NODES, n_events=10, seed=6)
        result = replay_trace(make_service(), trace, ReplayOptions(batch_size=4))
        path = tmp_path / "records.jsonl"
        write_records([result], path)
        write_records([result], path)
        records = [json.loads(line)
                   for line in path.read_text(encoding="utf-8").splitlines()]
        assert len(records) == 2
        assert records[0] == records[1] == result.to_record()
        assert records[0]["scenario"] == "uniform"
        assert len(records[0]["answer_checksum"]) == 64


class TestApproxModeConfiguration:
    def test_explicit_operating_point_skips_calibration(self, make_service):
        service = make_service(accuracy_budget=0.1, approx_walkers=40,
                               approx_steps=3)
        assert service.budget_calibration is None
        stats = service.stats()
        assert stats["approx_mode"] is True
        assert stats["accuracy_budget"] == 0.1
        assert stats["query_walkers_served"] == 40
        assert stats["walk_steps_served"] == 3

    def test_exact_mode_reports_the_full_operating_point(
            self, make_service, service_params):
        stats = make_service().stats()
        assert stats["approx_mode"] is False
        assert stats["accuracy_budget"] is None
        assert stats["query_walkers_served"] == service_params.query_walkers
        assert stats["walk_steps_served"] == service_params.walk_steps

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceParams(accuracy_budget=0.0)
        with pytest.raises(ConfigurationError):
            ServiceParams(accuracy_budget=1.5)
        with pytest.raises(ConfigurationError, match="approx_walkers"):
            ServiceParams(approx_walkers=40)
        with pytest.raises(ConfigurationError, match="approx_steps"):
            ServiceParams(approx_steps=3)
        with pytest.raises(ConfigurationError):
            ServiceParams(accuracy_budget=0.1, approx_walkers=0)

    def test_replay_options_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayOptions(batch_size=0)
        with pytest.raises(ConfigurationError):
            ReplayOptions(batch_window=-0.1)
        with pytest.raises(ConfigurationError):
            ReplayOptions(rebalance_every=-1)
        with pytest.raises(ConfigurationError):
            ReplayOptions(max_attempts=0)
