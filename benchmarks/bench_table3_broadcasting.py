"""T3 — the Broadcasting-model table (D / MCSP / MCSS per dataset).

Paper reference (broadcasting implementation)::

    Dataset        D        MCSP     MCSS
    wiki-vote      7s       0.004s   0.042s
    wiki-talk      59s      0.046s   0.179s
    twitter-2010   975s     0.049s   0.281s
    uk-union       3323s    0.025s   0.292s
    clue-web       110.2h   64.0s    188s

The expected *shape*: preprocessing (D) grows with the number of edges while
query times stay roughly flat (near-constant Monte-Carlo cost per query).
"""

from repro.bench import experiments, reporting

COLUMNS = [
    "dataset", "nodes", "edges", "D_seconds", "MCSP_seconds", "MCSS_seconds",
    "cluster_D_seconds", "index_walkers", "query_walkers",
]


def test_table3_broadcasting_model(benchmark, results_dir):
    result = benchmark.pedantic(
        experiments.execution_model_table,
        kwargs={"model_name": "broadcasting", "max_tier": "large"},
        rounds=1, iterations=1,
    )
    rendered = reporting.format_table(
        result["rows"], columns=COLUMNS,
        title="Table 3 — broadcasting model (measured locally + simulated 10-node cluster)",
    )
    reporting.save_results("table3_broadcasting", result, rendered, results_dir)
    print("\n" + rendered)

    rows = result["rows"]
    by_name = {row["dataset"]: row for row in rows}
    # Preprocessing cost must grow with graph size (paper: 7s -> 110h).
    assert by_name["clue-web"]["D_seconds"] > by_name["wiki-vote"]["D_seconds"]
    assert by_name["uk-union"]["D_seconds"] > by_name["wiki-talk"]["D_seconds"]
    # Query latency must not grow anywhere near as fast as graph size: the
    # largest stand-in has ~280x the edges of the smallest, queries must stay
    # within two orders of magnitude (paper keeps them within ~3 orders while
    # edges grow by 5-6 orders).
    edge_ratio = by_name["clue-web"]["edges"] / by_name["wiki-vote"]["edges"]
    mcsp_ratio = by_name["clue-web"]["MCSP_seconds"] / by_name["wiki-vote"]["MCSP_seconds"]
    assert mcsp_ratio < edge_ratio
    # MCSS is more expensive than MCSP on every dataset (paper shows the same).
    for row in rows:
        assert row["MCSS_seconds"] >= row["MCSP_seconds"] * 0.5
    # All datasets use the paper's full Monte-Carlo budget in this model.
    assert all(row["index_walkers"] == 100 for row in rows)
