"""Ablations of CloudWalker's design choices (DESIGN.md §5).

Not a single paper artefact, but the sweeps that justify the paper's default
parameters and design choices on the wiki-vote stand-in:

* index walkers R (Monte-Carlo budget of the offline phase),
* walk truncation T,
* query walkers R' (Monte-Carlo budget of MCSP),
* linear-system solver (parallel Jacobi vs Gauss-Seidel vs direct).
"""

from repro.analysis import ablation
from repro.bench import reporting
from repro.graph import datasets


def test_ablation_design_choices(benchmark, results_dir):
    graph = datasets.load("wiki-vote")

    def run_all():
        return {
            "index_walkers": ablation.index_walker_sweep(graph, [10, 30, 100, 300]),
            "walk_steps": ablation.walk_steps_sweep(graph, [2, 5, 10], reference_steps=14),
            "query_walkers": ablation.query_walker_sweep(
                graph, [100, 1_000, 10_000], n_pairs=20
            ),
            "solver": ablation.solver_sweep(graph),
        }

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rendered = (
        reporting.format_table(result["index_walkers"],
                               title="Ablation — index walkers R (wiki-vote stand-in)")
        + "\n"
        + reporting.format_table(result["walk_steps"],
                                 title="Ablation — walk truncation T")
        + "\n"
        + reporting.format_table(result["query_walkers"],
                                 title="Ablation — query walkers R' (MCSP)")
        + "\n"
        + reporting.format_table(result["solver"],
                                 title="Ablation — linear-system solver")
    )
    reporting.save_results("ablation_design_choices", result, rendered, results_dir)
    print("\n" + rendered)

    walker_rows = {row["index_walkers"]: row for row in result["index_walkers"]}
    assert walker_rows[300]["diag_mean_abs_error"] <= walker_rows[10]["diag_mean_abs_error"]

    step_rows = {row["walk_steps"]: row for row in result["walk_steps"]}
    assert step_rows[10]["simrank_mean_abs_error"] <= step_rows[2]["simrank_mean_abs_error"]

    query_rows = {row["query_walkers"]: row for row in result["query_walkers"]}
    assert query_rows[10_000]["mean_abs_error"] <= query_rows[100]["mean_abs_error"]

    solver_rows = {row["solver"]: row for row in result["solver"]}
    # The parallel Jacobi solve the paper uses is as accurate as the
    # sequential alternatives at the default iteration count.
    assert abs(solver_rows["jacobi"]["diag_mean_abs_error"]
               - solver_rows["exact"]["diag_mean_abs_error"]) < 0.02
