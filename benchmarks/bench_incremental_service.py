"""Live updates — incremental re-index + queries vs full rebuild.

A production service cannot afford to rebuild its index from scratch every
time the graph gains a few edges.  The live-update path bounds the work by
the *affected ball* of the edit (the forward BFS ball of the new edges'
heads, see ``docs/DESIGN.md``): only those index rows are re-estimated, only
those cache entries are invalidated, and everything else — index rows and
cached walk distributions alike — is carried over untouched.

This benchmark builds a 1k-node graph of 50 disjoint 20-node communities
(the shape under which edits stay local), warms a query service, then
applies a localized edit (≤ 1% new edges, confined to three communities)
two ways:

``incremental``
    ``QueryService.add_edges`` + the query workload on the live service:
    affected rows re-estimated, affected cache entries dropped, the rest
    of the cache still hot.

``rebuild``
    A fresh ``QueryService.build`` on the updated graph + the same workload
    from a cold cache — what a snapshot-oriented deployment would do.

Both paths must produce bitwise-identical answers (the incremental index is
bitwise-equal to the rebuilt one by construction); the incremental path must
be at least 5x faster.

Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_incremental_service.py
"""

import time

import numpy as np

from repro.config import SimRankParams
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.service import PairQuery, QueryService, TopKQuery

N_COMMUNITIES = 50
COMMUNITY_SIZE = 20
GRAPH_NODES = N_COMMUNITIES * COMMUNITY_SIZE
EDITED_COMMUNITIES = 3
EDGES_PER_EDIT = 4
N_QUERIES = 80
MIN_SPEEDUP = 5.0


def _edit_edges(rng: np.random.Generator):
    """New edges confined to the first EDITED_COMMUNITIES communities."""
    edges = []
    for community in range(EDITED_COMMUNITIES):
        base = community * COMMUNITY_SIZE
        for _ in range(EDGES_PER_EDIT):
            src, dst = rng.choice(COMMUNITY_SIZE, size=2, replace=False)
            edges.append((base + int(src), base + int(dst)))
    return edges


def _workload(rng: np.random.Generator):
    """Pair + top-k queries spread over the whole graph (mostly unaffected)."""
    queries = []
    for _ in range(N_QUERIES // 2):
        i, j = rng.integers(0, GRAPH_NODES, size=2)
        queries.append(PairQuery(int(i), int(j)))
        queries.append(TopKQuery(int(rng.integers(0, GRAPH_NODES)), k=10))
    return queries


def incremental_service_experiment():
    params = SimRankParams(c=0.6, walk_steps=8, jacobi_iterations=3,
                           index_walkers=100, query_walkers=400, seed=19)
    graph = generators.community_graph(
        N_COMMUNITIES, COMMUNITY_SIZE, p_in=0.3, p_out=0.0, seed=19,
        name="communities",
    )
    rng = np.random.default_rng(19)
    edits = _edit_edges(rng)
    assert len(edits) <= 0.01 * graph.n_edges, "edit must stay under 1% of edges"
    queries = _workload(rng)

    # Live service, warmed by the workload once (steady-state cache).
    service = QueryService.build(graph, params)
    service.run_batch(queries)
    warm_hits = service.stats()["cache_hits"]

    # Path A: incremental update + the workload on the still-warm service.
    start = time.perf_counter()
    mutation = service.add_edges(edits)
    incremental_answers = service.run_batch(queries)
    incremental_seconds = time.perf_counter() - start

    # Path B: full rebuild on the updated graph + the workload, cold.
    merged = DiGraph(
        graph.n_nodes,
        np.vstack([graph.edge_array(),
                   np.asarray(edits, dtype=np.int64).reshape(-1, 2)]),
        name=graph.name,
    )
    start = time.perf_counter()
    rebuilt = QueryService.build(merged, params)
    rebuild_answers = rebuilt.run_batch(queries)
    rebuild_seconds = time.perf_counter() - start

    mismatches = 0
    for left, right in zip(incremental_answers, rebuild_answers):
        if isinstance(left, float):
            mismatches += left != right
        else:
            mismatches += left != right if isinstance(left, list) else not np.array_equal(left, right)
    speedup = rebuild_seconds / max(incremental_seconds, 1e-9)

    rows = [
        {
            "path": "incremental",
            "seconds": round(incremental_seconds, 4),
            "rows_estimated": mutation.affected_rows,
            "cache_entries_dropped": service.stats()["cache_invalidations"],
            "index_version": incremental_answers.index_version,
        },
        {
            "path": "rebuild",
            "seconds": round(rebuild_seconds, 4),
            "rows_estimated": merged.n_nodes,
            "cache_entries_dropped": "n/a (cold cache)",
            "index_version": rebuild_answers.index_version,
        },
    ]
    return {
        "rows": rows,
        "speedup": speedup,
        "mismatches": int(mismatches),
        "edges_added": len(edits),
        "edge_fraction": len(edits) / graph.n_edges,
        "affected_rows": mutation.affected_rows,
        "affected_fraction": mutation.affected_rows / merged.n_nodes,
        "warm_cache_hits": warm_hits,
        "graph_nodes": GRAPH_NODES,
        "n_queries": len(queries),
    }


def _check_and_render(result) -> str:
    from repro.bench import reporting

    rendered = reporting.format_table(
        result["rows"],
        title=(f"Incremental update + {result['n_queries']} queries vs full "
               f"rebuild — {result['edges_added']} new edges "
               f"({result['edge_fraction']:.2%}) on a "
               f"{result['graph_nodes']}-node graph"),
    )
    assert result["mismatches"] == 0, (
        "incrementally updated service diverged from the rebuilt index"
    )
    assert result["affected_fraction"] < 0.15, (
        f"edit was supposed to be localized, but "
        f"{result['affected_fraction']:.1%} of rows were affected"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"incremental path is only {result['speedup']:.2f}x faster than a "
        f"full rebuild (needs >= {MIN_SPEEDUP}x)"
    )
    return rendered


def test_incremental_service(benchmark, results_dir):
    from repro.bench import reporting

    result = benchmark.pedantic(incremental_service_experiment, rounds=1, iterations=1)
    rendered = _check_and_render(result)
    reporting.save_results("incremental_service", result, rendered, results_dir)
    print("\n" + rendered)


if __name__ == "__main__":
    from repro.bench import reporting

    outcome = incremental_service_experiment()
    rendered = _check_and_render(outcome)
    reporting.save_results("incremental_service", outcome, rendered)
    print(rendered)
    print(f"speedup: {outcome['speedup']:.1f}x "
          f"({outcome['affected_rows']} affected rows, "
          f"{outcome['affected_fraction']:.1%} of the graph)")
