"""Tests for the scatter-gather :class:`ShardedQueryService`.

The headline contract — sharded answers are bitwise-identical to the
single-shard service for every query type, before and after live updates —
is pinned both here (example-based, every strategy) and in the property
suite (``tests/test_properties.py``, random graphs, K in {1, 2, 5}).
"""

import numpy as np
import pytest

from repro.config import ServiceParams, ShardingParams, UpdateParams
from repro.core.queries import merge_top_k, rank_top_k, rank_top_k_within
from repro.errors import CloudWalkerError
from repro.graph import generators
from repro.service import (
    PairQuery,
    QueryService,
    ShardedQueryService,
    SourceQuery,
    TopKQuery,
    plan_batch,
)

QUERIES = [
    PairQuery(3, 7), PairQuery(7, 3), PairQuery(9, 9), SourceQuery(12),
    TopKQuery(3, k=6), TopKQuery(50, k=10_000), SourceQuery(3),
]


def assert_answers_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        if isinstance(a, float):
            assert a == b
        elif isinstance(a, list):
            assert a == b
        else:
            assert np.array_equal(a, b)


@pytest.fixture()
def make_sharded(service_graph, service_index, service_params):
    """Factory producing a fresh sharded service per call."""

    def factory(num_shards=3, strategy="hash", **service_overrides):
        return ShardedQueryService(
            service_graph, service_index, service_params,
            ServiceParams(**service_overrides) if service_overrides else None,
            sharding=ShardingParams(num_shards=num_shards, strategy=strategy),
        )

    return factory


class TestAnswerEquivalence:
    @pytest.mark.parametrize("num_shards,strategy", [
        (1, "hash"), (2, "contiguous"), (3, "hash"), (5, "partitioner"),
    ])
    def test_bitwise_identical_to_single_shard(self, make_service, make_sharded,
                                               num_shards, strategy):
        single = make_service()
        sharded = make_sharded(num_shards=num_shards, strategy=strategy)
        reference = single.run_batch(QUERIES)
        answers = sharded.run_batch(QUERIES)
        assert_answers_equal(reference, answers)
        assert answers.index_version == reference.index_version

    def test_cached_second_batch_identical(self, make_service, make_sharded):
        single = make_service()
        sharded = make_sharded()
        single.run_batch(QUERIES)
        sharded.run_batch(QUERIES)
        # Second pass is served from the per-shard caches.
        assert_answers_equal(single.run_batch(QUERIES), sharded.run_batch(QUERIES))
        assert sharded.stats()["cache_hits"] > 0

    def test_single_query_conveniences(self, make_service, make_sharded):
        single = make_service()
        sharded = make_sharded()
        assert sharded.single_pair(3, 7) == single.single_pair(3, 7)
        assert np.array_equal(sharded.single_source(5), single.single_source(5))
        assert sharded.top_k(5, k=4) == single.top_k(5, k=4)


class TestScatterGatherTopK:
    def test_merge_equals_global_ranking(self, make_sharded):
        sharded = make_sharded(num_shards=4)
        distributions = sharded._resolve_distributions(
            plan_batch([SourceQuery(5)]), None,
        )
        scores = sharded.engine.propagate_source(5, distributions[5])
        partials = [
            rank_top_k_within(scores, 5, owned, 7)
            for owned in sharded._shard_nodes()
        ]
        assert merge_top_k(partials, 7) == rank_top_k(scores, 5, 7)

    def test_ties_merge_canonically(self):
        # Equal scores must break ties by node id no matter how candidates
        # are split across shards.
        scores = np.array([0.5, 0.25, 0.25, 0.25, 0.1])
        whole = rank_top_k(scores, 0, 3, include_self=True)
        assert whole == [(0, 0.5), (1, 0.25), (2, 0.25)]
        partials = [
            rank_top_k_within(scores, 0, np.array([2, 4]), 3, include_self=True),
            rank_top_k_within(scores, 0, np.array([0, 1, 3]), 3, include_self=True),
        ]
        assert merge_top_k(partials, 3) == whole

    def test_k_larger_than_graph(self, make_service, make_sharded):
        single = make_service()
        sharded = make_sharded(num_shards=5)
        assert sharded.top_k(2, k=10_000) == single.top_k(2, k=10_000)


class TestShardRouting:
    def test_sources_cached_on_owning_shard(self, make_sharded):
        sharded = make_sharded(num_shards=3)
        sharded.run_batch([SourceQuery(4), SourceQuery(9), PairQuery(17, 23)])
        for source in (4, 9, 17, 23):
            owner = sharded.shard_of(source)
            for shard, cache in enumerate(sharded.shard_caches):
                entries = [key.node for key in cache._entries]
                assert (source in entries) == (shard == owner)

    def test_per_shard_capacity(self, make_sharded):
        sharded = make_sharded(num_shards=2, cache_capacity=1)
        sharded.run_batch([SourceQuery(node) for node in range(10)])
        stats = sharded.stats()
        assert stats["cache_capacity"] == 2
        assert stats["cache_size"] <= 2

    def test_stats_shape(self, make_sharded):
        sharded = make_sharded(num_shards=3)
        sharded.run_batch(QUERIES)
        stats = sharded.stats()
        assert stats["num_shards"] == 3
        assert len(stats["shards"]) == 3
        assert sum(row["nodes"] for row in stats["shards"]) == sharded.graph.n_nodes
        assert sum(row["sources_simulated"] for row in stats["shards"]) \
            == stats["sources_simulated"]
        assert stats["cache_size"] == sum(row["cache_size"]
                                          for row in stats["shards"])


class TestLiveUpdates:
    EDIT = [(0, 60), (2, 121), (121, 1)]

    def _services(self, service_graph, params, num_shards=3):
        single = QueryService.build(service_graph, params)
        sharded = ShardedQueryService.build(
            service_graph, params,
            sharding=ShardingParams(num_shards=num_shards),
        )
        return single, sharded

    def test_update_answers_identical(self, service_graph, service_params):
        single, sharded = self._services(service_graph, service_params)
        single.add_edges(self.EDIT)
        sharded.add_edges(self.EDIT)
        assert_answers_equal(single.run_batch(QUERIES), sharded.run_batch(QUERIES))
        assert sharded.index_version == single.index_version == 2

    def test_deferred_updates_drain_identically(self, service_graph, service_params):
        single, sharded = self._services(service_graph, service_params)
        single.add_edges(self.EDIT, defer=True)
        sharded.add_edges(self.EDIT, defer=True)
        assert sharded.pending_updates == len(self.EDIT)
        reference = single.run_batch(QUERIES)
        answers = sharded.run_batch(QUERIES)
        assert_answers_equal(reference, answers)
        assert answers.index_version == 2
        assert sharded.pending_updates == 0

    def test_only_touched_shards_bump_and_invalidate(self, service_params):
        # Disjoint communities + contiguous plan: an edit inside community 0
        # must leave every other shard's version and cache untouched.
        graph = generators.community_graph(4, 16, p_in=0.35, p_out=0.0, seed=3)
        sharded = ShardedQueryService.build(
            graph, service_params,
            sharding=ShardingParams(num_shards=4, strategy="contiguous"),
        )
        sharded.run_batch([SourceQuery(node) for node in range(0, 64, 4)])
        sizes_before = [len(cache) for cache in sharded.shard_caches]
        result = sharded.add_edges([(0, 5)])
        assert result is not None
        assert sharded.shard_versions[0] == 2
        assert sharded.shard_versions[1:] == [1, 1, 1]
        for shard in range(1, 4):
            assert len(sharded.shard_caches[shard]) == sizes_before[shard]
            assert sharded.shard_caches[shard].stats.invalidations == 0
        assert sharded.shard_caches[0].stats.invalidations > 0

    def test_duplicate_edges_are_noops(self, service_graph, service_params):
        _single, sharded = self._services(service_graph, service_params, 2)
        edge = next(iter(map(tuple, service_graph.edge_array()[:1])))
        assert sharded.add_edges([edge]) is None
        assert sharded.index_version == 1

    def test_edges_routed_counter(self, service_graph, service_params):
        _single, sharded = self._services(service_graph, service_params, 2)
        sharded.add_edges(self.EDIT)
        routed = sum(row["edges_routed"] for row in sharded.stats()["shards"])
        assert routed == len(self.EDIT)


class TestShardedPersistence:
    def test_snapshot_round_trip_resumes_incrementally(self, service_graph,
                                                       service_params, tmp_path):
        sharded = ShardedQueryService.build(
            service_graph, service_params,
            sharding=ShardingParams(num_shards=3),
        )
        sharded.add_edges([(0, 60)])
        version, path = sharded.save_snapshot(tmp_path / "snaps")
        assert version == 2
        restored = ShardedQueryService.from_snapshot(
            sharded.graph, tmp_path / "snaps"
        )
        assert restored.index_version == 2
        assert restored.num_shards == 3
        # The restored system lets the next update run incrementally.
        assert restored._mutator is not None
        assert_answers_equal(sharded.run_batch(QUERIES), restored.run_batch(QUERIES))
        result = restored.add_edges([(1, 40)])
        assert result is not None and restored.index_version == 3

    def test_save_same_version_twice_is_noop(self, service_graph, service_params,
                                             tmp_path):
        sharded = ShardedQueryService.build(
            service_graph, service_params, sharding=ShardingParams(num_shards=2),
        )
        sharded.save_snapshot(tmp_path / "snaps")
        written = sharded.stats()["snapshots_written"]
        sharded.save_snapshot(tmp_path / "snaps")
        assert sharded.stats()["snapshots_written"] == written

    def test_snapshot_requires_directory(self, make_sharded):
        with pytest.raises(CloudWalkerError):
            make_sharded().save_snapshot()

    def test_auto_snapshot_cadence(self, service_graph, service_params, tmp_path):
        sharded = ShardedQueryService.build(
            service_graph, service_params,
            update_params=UpdateParams(snapshot_every=1,
                                       snapshot_dir=str(tmp_path / "snaps")),
            sharding=ShardingParams(num_shards=2),
        )
        sharded.add_edges([(0, 60)])
        from repro.core.index import ShardedSnapshotStore
        store = ShardedSnapshotStore(tmp_path / "snaps")
        assert store.latest_version() == 2

    def test_from_index_file_cold_start(self, service_graph, service_index,
                                        service_params, tmp_path, make_service):
        path = tmp_path / "index.npz"
        service_index.save(path)
        sharded = ShardedQueryService.from_index_file(
            service_graph, path, params=service_params,
            sharding=ShardingParams(num_shards=3),
        )
        single = make_service()
        assert_answers_equal(single.run_batch(QUERIES), sharded.run_batch(QUERIES))
        # First update attaches (estimates the system shard-by-shard).
        result = sharded.add_edges([(0, 60)])
        assert result is not None and sharded.index_version == 2


class TestLifecycle:
    def test_close_releases_serve_pool_and_service_revives(self, make_service,
                                                           make_sharded):
        sharded = make_sharded(serve_backend="threads", serve_workers=2)
        single = make_service()
        assert_answers_equal(single.run_batch(QUERIES), sharded.run_batch(QUERIES))
        assert sharded._serve_backend._pool is not None
        sharded.close()
        assert sharded._serve_backend._pool is None
        sharded.close()  # idempotent
        # A closed service still serves (the pool revives transparently).
        assert_answers_equal(single.run_batch(QUERIES), sharded.run_batch(QUERIES))
        sharded.close()

    def test_context_manager_closes_pool(self, make_sharded):
        with make_sharded(serve_backend="threads") as sharded:
            sharded.run_batch(QUERIES)
            assert sharded._serve_backend._pool is not None
        assert sharded._serve_backend._pool is None

    def test_close_shuts_down_walker_backend(self, service_graph, service_params):
        sharded = ShardedQueryService.build(
            service_graph, service_params,
            sharding=ShardingParams(num_shards=2, backend="threads"),
        )
        walker_backend = sharded._mutator.walker.backend
        assert walker_backend._pool is not None  # the build fanned out
        sharded.close()
        assert walker_backend._pool is None

    def test_single_shard_close_is_noop_context_manager(self, make_service):
        with make_service() as single:
            single.run_batch(QUERIES)
        single.close()
        assert single.run_batch(QUERIES)  # still serving

    def test_stats_report_serve_backend(self, make_sharded):
        with make_sharded(serve_backend="threads", serve_workers=3) as sharded:
            stats = sharded.stats()
            assert stats["serve_backend"] == "threads"
            assert stats["serve_workers"] == 3

    def test_scatter_timings_cover_touched_shards(self, make_sharded):
        with make_sharded(num_shards=3) as sharded:
            sharded.run_batch(QUERIES)
            touched = set(sharded.last_scatter_seconds)
            assert touched  # something was simulated
            assert all(seconds >= 0.0
                       for seconds in sharded.last_scatter_seconds.values())
            # Fully cached re-run scatters nothing.
            sharded.run_batch(QUERIES)
            assert sharded.last_scatter_seconds == {}


class TestConstruction:
    def test_sharded_index_input_adopts_plan(self, service_graph, service_index,
                                             service_params):
        from repro.core.index import ShardedIndex
        from repro.graph.partition import ShardPlan
        plan = ShardPlan.contiguous(2, service_graph.n_nodes)
        sharded_index = ShardedIndex(index=service_index, plan=plan,
                                     shard_versions=[4, 4])
        service = ShardedQueryService(service_graph, sharded_index,
                                      service_params)
        assert service.num_shards == 2
        assert service.plan.strategy == "contiguous"
        assert service.shard_versions == [4, 4]

    def test_plan_shard_count_mismatch_raises(self, service_graph, service_index,
                                              service_params):
        from repro.graph.partition import ShardPlan
        with pytest.raises(CloudWalkerError):
            ShardedQueryService(
                service_graph, service_index, service_params,
                sharding=ShardingParams(num_shards=3),
                plan=ShardPlan.hashed(2),
            )

    def test_repr_mentions_shards(self, make_sharded):
        assert "shards=3" in repr(make_sharded())
