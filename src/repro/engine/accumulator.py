"""Accumulators: write-only shared variables aggregated across tasks.

Tasks call :meth:`Accumulator.add`; only the driver reads
:attr:`Accumulator.value`.  The implementation is thread-safe so the thread
backend can update accumulators concurrently.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """An associative accumulator (default: numeric sum).

    Parameters
    ----------
    initial:
        Starting value (also the identity of ``combine``).
    combine:
        Binary associative function; defaults to ``+``.
    name:
        Optional name shown in ``repr`` and metrics.
    """

    def __init__(
        self,
        initial: T,
        combine: Callable[[T, T], T] = lambda a, b: a + b,  # type: ignore[operator]
        name: str = "accumulator",
    ) -> None:
        self._value = initial
        self._combine = combine
        self.name = name
        self._lock = threading.Lock()
        self.updates = 0

    def add(self, increment: T) -> None:
        """Merge ``increment`` into the accumulator."""
        with self._lock:
            self._value = self._combine(self._value, increment)
            self.updates += 1

    @property
    def value(self) -> T:
        """Current aggregated value (driver-side read)."""
        with self._lock:
            return self._value

    def reset(self, value: T) -> None:
        """Reset the accumulator to ``value`` (used between jobs)."""
        with self._lock:
            self._value = value
            self.updates = 0

    def __repr__(self) -> str:
        return f"Accumulator(name={self.name!r}, value={self.value!r})"
