"""The *Broadcasting* execution model.

In this model (the faster of the paper's two Spark implementations) the
whole graph is broadcast to every worker.  Work is then embarrassingly
parallel:

* offline indexing — the node set is split into partitions; each task runs
  the Monte-Carlo estimation of its nodes' rows of ``A`` against the
  broadcast graph, and each Jacobi iteration updates each partition's block
  of ``x`` against the broadcast previous iterate;
* online queries — any single worker holding the broadcast graph (plus the
  tiny diagonal index) can answer MCSP / MCSS locally.

The trade-off, reproduced by :class:`~repro.engine.cost_model.ClusterCostModel`,
is that the graph must fit in a single executor's memory — the reason the
paper also provides the RDD model for clue-web.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.config import ClusterSpec, ExecutionOptions, SimRankParams
from repro.core import linear_system, walks
from repro.core.index import BuildInfo, DiagonalIndex
from repro.core.jacobi import jacobi_step
from repro.core.queries import QueryEngine
from repro.engine.context import ClusterContext
from repro.graph.digraph import DiGraph


class BroadcastingModel:
    """CloudWalker with the graph broadcast to every executor.

    Parameters
    ----------
    graph:
        Input graph.
    params:
        Algorithmic parameters.
    context:
        An existing :class:`ClusterContext`; a serial-backend context is
        created when omitted.
    num_partitions:
        How many node partitions to split the work into (default: the
        context's parallelism).
    """

    name = "broadcasting"

    def __init__(
        self,
        graph: DiGraph,
        params: Optional[SimRankParams] = None,
        context: Optional[ClusterContext] = None,
        cluster: Optional[ClusterSpec] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.params = params or SimRankParams.paper_defaults()
        self.context = context or ClusterContext(
            ExecutionOptions(backend="serial"), cluster=cluster
        )
        self.num_partitions = num_partitions or self.context.default_parallelism
        self.index: Optional[DiagonalIndex] = None
        self._graph_broadcast = None
        self._index_broadcast = None
        self._query_engine: Optional[QueryEngine] = None

    # ------------------------------------------------------------------ #
    def _broadcast_graph(self):
        if self._graph_broadcast is None:
            self._graph_broadcast = self.context.broadcast(
                self.graph, size_bytes=self.graph.memory_bytes()
            )
        return self._graph_broadcast

    def feasible_on(self, cluster: Optional[ClusterSpec] = None) -> bool:
        """Whether the graph fits in one executor of ``cluster``."""
        model = self.context.cost_model
        if cluster is not None:
            from repro.engine.cost_model import ClusterCostModel

            model = ClusterCostModel(cluster)
        return model.broadcast_fits(self.graph.memory_bytes())

    # ------------------------------------------------------------------ #
    # Offline indexing
    # ------------------------------------------------------------------ #
    def build_index(self) -> DiagonalIndex:
        """Run the offline phase through the engine and return the index."""
        start = time.perf_counter()
        checkpoint = self.context.checkpoint()
        graph_broadcast = self._broadcast_graph()
        params = self.params
        n_nodes = self.graph.n_nodes

        # Phase 1: Monte-Carlo estimation of the rows of A, one task per
        # node partition, each against the broadcast graph.
        nodes_rdd = self.context.parallelize(
            range(n_nodes), self.num_partitions, name="nodes"
        )

        def estimate_rows(partition_index: int, nodes) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
            node_list = list(nodes)
            if not node_list:
                return []
            local_graph = graph_broadcast.value
            rng = walks.make_rng(params.seed, stream=10_000 + partition_index)
            rows, cols, values = linear_system.build_rows(
                local_graph, node_list, params, rng=rng
            )
            return [(rows, cols, values)]

        triples = nodes_rdd.map_partitions_with_index(estimate_rows).collect()
        monte_carlo_seconds = time.perf_counter() - start

        system = self._assemble_system(triples, n_nodes)

        # Phase 2: parallel Jacobi.  Each iteration broadcasts the previous
        # iterate and lets every partition update its block of x.
        solve_start = time.perf_counter()
        x = np.full(n_nodes, 1.0 - params.c, dtype=np.float64)
        rhs = np.ones(n_nodes, dtype=np.float64)
        blocks = self._node_blocks(n_nodes)
        block_rows = [
            (block, system[block, :], rhs[block]) for block in blocks if len(block)
        ]
        for _ in range(params.jacobi_iterations):
            x_broadcast = self.context.broadcast(x)
            blocks_rdd = self.context.parallelize(
                block_rows, num_partitions=max(len(block_rows), 1), name="jacobi-blocks"
            )

            def update_block(block_data):
                block_ids, rows, rhs_block = block_data
                return (
                    block_ids,
                    jacobi_step(rows, block_ids, rhs_block, x_broadcast.value),
                )

            updates = blocks_rdd.map(update_block).collect()
            new_x = x.copy()
            for block_ids, values in updates:
                new_x[block_ids] = values
            x = new_x
        solve_seconds = time.perf_counter() - solve_start

        residual = float(
            np.linalg.norm(system @ x - rhs) / max(np.linalg.norm(rhs), 1e-12)
        ) if n_nodes else float("nan")

        phase_metrics = self.context.metrics_since(checkpoint, action="build-index")
        build_info = BuildInfo(
            execution_model=self.name,
            monte_carlo_seconds=monte_carlo_seconds,
            solve_seconds=solve_seconds,
            total_seconds=time.perf_counter() - start,
            jacobi_residual=residual,
            system_nnz=int(system.nnz),
            extras={
                "engine_jobs": phase_metrics.num_stages,
                "engine_tasks": phase_metrics.num_tasks,
                "num_partitions": self.num_partitions,
                "graph_broadcast_bytes": self.graph.memory_bytes(),
            },
        )
        self.index = DiagonalIndex(
            diagonal=x,
            params=params,
            graph_name=self.graph.name,
            n_nodes=n_nodes,
            n_edges=self.graph.n_edges,
            build_info=build_info,
        )
        self._query_engine = QueryEngine(self.graph, self.index, params)
        return self.index

    @staticmethod
    def _assemble_system(
        triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]], n_nodes: int
    ) -> sparse.csr_matrix:
        if not triples:
            return sparse.csr_matrix((n_nodes, n_nodes), dtype=np.float64)
        rows = np.concatenate([chunk[0] for chunk in triples])
        cols = np.concatenate([chunk[1] for chunk in triples])
        values = np.concatenate([chunk[2] for chunk in triples])
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
        )

    def _node_blocks(self, n_nodes: int) -> List[np.ndarray]:
        boundaries = np.linspace(0, n_nodes, self.num_partitions + 1, dtype=np.int64)
        return [
            np.arange(boundaries[i], boundaries[i + 1], dtype=np.int64)
            for i in range(self.num_partitions)
        ]

    # ------------------------------------------------------------------ #
    # Online queries (executed as single-task engine jobs)
    # ------------------------------------------------------------------ #
    def _require_index(self) -> QueryEngine:
        if self.index is None or self._query_engine is None:
            from repro.errors import IndexNotBuiltError

            raise IndexNotBuiltError("broadcasting-model query")
        return self._query_engine

    def single_pair(self, node_i: int, node_j: int) -> float:
        """MCSP executed on one executor holding the broadcast graph."""
        engine = self._require_index()
        result = self.context.parallelize([(node_i, node_j)], 1, name="mcsp").map(
            lambda pair: engine.single_pair(pair[0], pair[1])
        ).collect()
        return result[0]

    def single_source(self, node: int) -> np.ndarray:
        """MCSS executed on one executor holding the broadcast graph."""
        engine = self._require_index()
        result = self.context.parallelize([node], 1, name="mcss").map(
            engine.single_source
        ).collect()
        return result[0]

    def all_pairs(self, nodes: Optional[List[int]] = None) -> np.ndarray:
        """MCAP: sources are distributed across partitions."""
        engine = self._require_index()
        sources = list(range(self.graph.n_nodes)) if nodes is None else list(nodes)
        rows = self.context.parallelize(sources, self.num_partitions, name="mcap").map(
            lambda source: (source, engine.single_source(source))
        ).collect()
        matrix = np.zeros((self.graph.n_nodes, self.graph.n_nodes), dtype=np.float64)
        for source, scores in rows:
            matrix[source] = scores
        return matrix

    # ------------------------------------------------------------------ #
    def phase_metrics(self, checkpoint: int = 0):
        """Merged engine metrics since ``checkpoint`` (for the cost model)."""
        return self.context.metrics_since(checkpoint, action=f"{self.name}-phase")

    def shutdown(self) -> None:
        """Release the engine context."""
        self.context.shutdown()
