"""F1 — "CloudWalker converges quickly" (accuracy vs L and vs R on wiki-vote).

The paper's figure shows the indexing pipeline converging rapidly with the
number of Jacobi iterations (L=3 suffices) and the number of Monte-Carlo
walkers.  This benchmark regenerates both series, measuring error against
(a) the exact diagonal correction and (b) ground-truth Jeh-Widom SimRank,
plus a solver ablation (Jacobi vs Gauss-Seidel vs direct solve).
"""

from repro.bench import experiments, reporting


def test_fig1_convergence(benchmark, results_dir):
    result = benchmark.pedantic(
        experiments.convergence_experiment, kwargs={"dataset": "wiki-vote"},
        rounds=1, iterations=1,
    )
    rendered = (
        reporting.format_table(
            result["iteration_sweep"],
            title="Figure 1a — error vs Jacobi iterations L (R=100, wiki-vote stand-in)",
        )
        + "\n"
        + reporting.format_table(
            result["walker_sweep"],
            title="Figure 1b — error vs index walkers R (L=3, wiki-vote stand-in)",
        )
        + "\n"
        + reporting.format_table(
            result["solver_ablation"],
            title="Figure 1c — solver ablation (L=3 iterations where applicable)",
        )
    )
    reporting.save_results("fig1_convergence", result, rendered, results_dir)
    print("\n" + rendered)

    iteration_rows = result["iteration_sweep"]
    by_iterations = {row["jacobi_iterations"]: row for row in iteration_rows}
    # Error must drop sharply within the first few Jacobi iterations and be
    # essentially converged at the paper's default L=3.
    assert by_iterations[3]["simrank_mean_abs_error"] < by_iterations[0]["simrank_mean_abs_error"]
    assert by_iterations[3]["diag_mean_abs_error"] < 0.05
    assert abs(
        by_iterations[5]["simrank_mean_abs_error"] - by_iterations[3]["simrank_mean_abs_error"]
    ) < 0.01

    walker_rows = result["walker_sweep"]
    by_walkers = {row["index_walkers"]: row for row in walker_rows}
    # More walkers -> lower diagonal error (Monte-Carlo convergence).
    assert by_walkers[300]["diag_mean_abs_error"] < by_walkers[10]["diag_mean_abs_error"]

    # The parallel Jacobi solver reaches (essentially) the same solution as
    # the sequential and direct solvers.
    solver_errors = {row["solver"]: row["diag_mean_abs_error"]
                     for row in result["solver_ablation"]}
    assert abs(solver_errors["jacobi"] - solver_errors["exact"]) < 0.02
