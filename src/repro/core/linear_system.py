"""Assembly of the CloudWalker indexing linear system ``A x = 1``.

The SimRank linearization ``S = sum_t c^t (P^T)^t D P^t`` together with the
constraint ``diag(S) = 1`` ("self-similarity is 1.0") yields, for every node
``i``::

    sum_u  [ sum_t c^t ((P^t e_i)_u)^2 ]  x_u  =  1

i.e. a linear system ``A x = 1`` whose row ``i`` is the vector
``a_i = sum_t c^t (P^t e_i) ∘ (P^t e_i)``.  CloudWalker estimates the rows by
Monte-Carlo simulation (:func:`build_system`), fully independently per node —
this is the part the paper parallelises across the cluster.

:func:`build_exact_system` computes the same matrix from the exact walk
distributions; it is used for unit tests, small-graph ablations and the LIN
baseline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.config import SimRankParams
from repro.core import walks
from repro.graph.digraph import DiGraph


def discount_factors(decay: float, steps: int) -> np.ndarray:
    """Return ``[c^0, c^1, ..., c^steps]``."""
    return decay ** np.arange(steps + 1, dtype=np.float64)


def build_rows(
    graph: DiGraph,
    sources: Sequence[int],
    params: SimRankParams,
    rng: Optional[np.random.Generator] = None,
    walkers: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Monte-Carlo estimate of the rows ``a_i`` for ``i`` in ``sources``.

    Returns COO-style arrays ``(row_ids, col_ids, values)`` where ``row_ids``
    holds actual node ids (not positions within ``sources``).  All sources'
    walkers advance together in one flat simulation, so the cost is
    ``O(len(sources) * R * T)`` vector operations.
    """
    sources = np.asarray(list(sources), dtype=np.int64)
    walkers_count = walkers if walkers is not None else params.index_walkers
    if rng is None:
        rng = walks.make_rng(params.seed, stream=int(sources[0]) if len(sources) else 0)
    factors = discount_factors(params.c, params.walk_steps)

    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    value_chunks: list[np.ndarray] = []
    for step, source_ids, node_ids, counts in walks.walk_step_counts(
        graph, sources, walkers_count, params.walk_steps, rng
    ):
        probabilities = counts.astype(np.float64) / walkers_count
        row_chunks.append(source_ids)
        col_chunks.append(node_ids)
        value_chunks.append(factors[step] * probabilities * probabilities)

    return _merge_duplicate_entries(row_chunks, col_chunks, value_chunks, graph.n_nodes)


def _merge_duplicate_entries(
    row_chunks: Sequence[np.ndarray],
    col_chunks: Sequence[np.ndarray],
    value_chunks: Sequence[np.ndarray],
    n_nodes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge duplicate (row, col) entries produced by different steps.

    The stable sort keeps each cell's contributions in chunk order, so the
    per-cell summation order — and therefore the floating-point result — is
    a function of one row's own chunks only, never of which other rows were
    estimated alongside it.
    """
    if not row_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)

    rows = np.concatenate(row_chunks)
    cols = np.concatenate(col_chunks)
    values = np.concatenate(value_chunks)
    keys = rows * np.int64(n_nodes) + cols
    order = np.argsort(keys, kind="stable")
    keys, rows, cols, values = keys[order], rows[order], cols[order], values[order]
    unique_keys, start_indices = np.unique(keys, return_index=True)
    summed = np.add.reduceat(values, start_indices)
    return rows[start_indices], cols[start_indices], summed


def build_rows_streamed(
    graph: DiGraph,
    sources: Sequence[int],
    params: SimRankParams,
    walkers: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`build_rows`, but every source consumes its own RNG stream.

    Row ``a_i`` is estimated from walks driven by the ``(params.seed, i)``
    stream — the same per-source stream discipline as
    :func:`repro.core.walks.simulate_walks_batch` — so the estimate of one
    row is bitwise-independent of which *other* rows are estimated in the
    same call.  That independence is what makes incremental maintenance
    exactly reproducible: re-estimating only the affected rows after an edge
    insertion yields a system bitwise-identical to estimating every row from
    scratch on the updated graph (see
    :meth:`repro.core.incremental.IncrementalCloudWalker`), because the
    retained rows would have come out identical anyway.

    Slightly slower than :func:`build_rows` (one RNG per source instead of a
    single shared stream); used where reproducible updates matter more than
    peak indexing throughput.
    """
    walkers_count = walkers if walkers is not None else params.index_walkers
    factors = discount_factors(params.c, params.walk_steps)
    batch = walks.simulate_walks_batch(
        graph, list(sources), walkers_count, params.walk_steps, params.seed
    )
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    value_chunks: list[np.ndarray] = []
    for source in sorted(batch):
        for step, (nodes, counts) in enumerate(batch[source]):
            if len(nodes) == 0:
                continue
            probabilities = counts.astype(np.float64) / walkers_count
            row_chunks.append(np.full(len(nodes), source, dtype=np.int64))
            col_chunks.append(nodes)
            value_chunks.append(factors[step] * probabilities * probabilities)
    return _merge_duplicate_entries(row_chunks, col_chunks, value_chunks, graph.n_nodes)


def build_system(
    graph: DiGraph,
    params: SimRankParams,
    sources: Optional[Iterable[int]] = None,
    rng: Optional[np.random.Generator] = None,
    walkers: Optional[int] = None,
) -> sparse.csr_matrix:
    """Monte-Carlo estimate of the full system matrix ``A`` (CSR, n x n).

    ``sources`` restricts the rows that are estimated (other rows are left
    empty); by default every node's row is built.
    """
    if sources is None:
        sources = range(graph.n_nodes)
    rows, cols, values = build_rows(graph, list(sources), params, rng=rng, walkers=walkers)
    return sparse.csr_matrix(
        (values, (rows, cols)), shape=(graph.n_nodes, graph.n_nodes), dtype=np.float64
    )


def build_exact_system(graph: DiGraph, params: SimRankParams) -> sparse.csr_matrix:
    """Exact system matrix from true walk distributions (no Monte-Carlo).

    Cost is O(n * T * |E|); suitable for the small graphs used in tests and
    for the LIN baseline.
    """
    transition = graph.transition_matrix()
    factors = discount_factors(params.c, params.walk_steps)
    # Current = P^t, built column-block-wise to stay sparse.
    current = sparse.identity(graph.n_nodes, format="csr", dtype=np.float64)
    system = sparse.csr_matrix((graph.n_nodes, graph.n_nodes), dtype=np.float64)
    for step in range(params.walk_steps + 1):
        squared = current.copy()
        squared.data = squared.data ** 2
        # Row i of A gets (P^t e_i)_u^2 = (P^t)[u, i]^2  ->  transpose.
        system = system + factors[step] * squared.T.tocsr()
        if step < params.walk_steps:
            current = transition @ current
            current.eliminate_zeros()
    system.sum_duplicates()
    return system.tocsr()


def system_diagnostics(system: sparse.csr_matrix) -> dict:
    """Summary statistics of an assembled system (used in reports/tests)."""
    diagonal = system.diagonal()
    off_diagonal_sums = np.asarray(np.abs(system).sum(axis=1)).ravel() - np.abs(diagonal)
    with np.errstate(divide="ignore", invalid="ignore"):
        dominance = np.where(diagonal > 0, off_diagonal_sums / diagonal, np.inf)
    return {
        "n_rows": system.shape[0],
        "nnz": int(system.nnz),
        "avg_row_nnz": float(system.nnz / max(system.shape[0], 1)),
        "min_diagonal": float(diagonal.min()) if system.shape[0] else 0.0,
        "max_off_diagonal_ratio": float(dominance.max()) if system.shape[0] else 0.0,
        "rows_diagonally_dominant_fraction": float((dominance < 1.0).mean())
        if system.shape[0]
        else 1.0,
    }
