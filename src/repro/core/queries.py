"""Online SimRank queries: MCSP, MCSS and MCAP.

Given the diagonal index ``x`` (see :mod:`repro.core.diagonal`), linearized
SimRank is::

    s(i, j) = sum_{t=0}^{T} c^t  (P^t e_i)^T  D  (P^t e_j)

The three query types from the paper:

``MCSP`` (single pair)
    Estimate ``P^t e_i`` and ``P^t e_j`` with ``R'`` Monte-Carlo walkers each
    and combine them step by step — O(T · R') per query, independent of the
    graph size.
``MCSS`` (single source)
    Estimate ``P^t e_i`` by Monte-Carlo, then push each step's weighted
    distribution back out through ``(P^T)^t`` — O(T² · R' · log d̄).
``MCAP`` (all pairs)
    MCSS repeated for every node — O(n · T² · R' · log d̄).

Each query also has an exact (non-Monte-Carlo) counterpart used by tests and
accuracy experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.config import SimRankParams
from repro.core import montecarlo, walks
from repro.core.index import DiagonalIndex
from repro.graph.digraph import DiGraph


def _select_top_k(candidates: np.ndarray, values: np.ndarray,
                  k: int) -> List[Tuple[int, float]]:
    """Top-``k`` of ``(candidates, values)`` under the canonical total order.

    The order is *score descending, node id ascending* — a total order, so
    the result is a pure function of the (node, score) set.  That property
    is what makes sharded serving exact: ranking a score vector in one
    piece, or ranking disjoint candidate slices and merging them, must
    produce the same list (see :func:`merge_top_k`).  Non-finite scores
    (the ``-inf`` used to mask the source itself) are dropped.
    """
    finite = np.isfinite(values)
    candidates, values = candidates[finite], values[finite]
    if k <= 0 or len(candidates) == 0:
        return []
    if len(candidates) > k:
        # Cheap pre-filter: keep everything scoring at least the k-th best
        # value (ties at the boundary included), then order canonically.
        threshold = values[np.argpartition(-values, kth=k - 1)[k - 1]]
        keep = values >= threshold
        candidates, values = candidates[keep], values[keep]
    order = np.lexsort((candidates, -values))[:k]
    return [(int(candidates[i]), float(values[i])) for i in order]


def rank_top_k(scores: np.ndarray, node: int, k: int,
               include_self: bool = False) -> List[Tuple[int, float]]:
    """Rank a single-source score vector into a top-``k`` list.

    Parameters
    ----------
    scores:
        Dense score vector (one entry per node), e.g. the output of
        :meth:`QueryEngine.propagate_source`.
    node:
        The source node; excluded from the ranking unless ``include_self``.
    k:
        Maximum length of the returned list (capped at ``len(scores)``).
    include_self:
        Keep the source itself (score 1.0) in the ranking.

    Returns ``[(node_id, score), ...]`` ordered by score descending with
    node-id-ascending tie-breaking — a canonical total order shared by
    :meth:`QueryEngine.top_k`, the query service, and the sharded service's
    scatter-gather merge (:func:`rank_top_k_within` + :func:`merge_top_k`),
    so all paths rank bitwise-identically.
    """
    return rank_top_k_within(
        scores, node, np.arange(len(scores)), k, include_self=include_self
    )


def rank_top_k_within(scores: np.ndarray, node: int,
                      candidates: np.ndarray, k: int,
                      include_self: bool = False) -> List[Tuple[int, float]]:
    """Rank only ``candidates`` (a subset of node ids) of a score vector.

    This is one shard's half of the scatter-gather top-k: the shard ranks
    the candidate nodes it owns, and :func:`merge_top_k` combines the
    per-shard lists.  Because the ranking order is total,
    ``merge_top_k([rank_top_k_within(scores, node, part, k) for part in
    partition_of_all_nodes], k)`` equals ``rank_top_k(scores, node, k)``
    exactly — the equivalence the sharded service's tests pin down.

    Arguments match :func:`rank_top_k`; ``candidates`` is an array of node
    ids (need not be sorted, must be a subset of ``range(len(scores))``).
    Returns at most ``min(k, len(scores))`` entries.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    # scores[candidates] is already a fresh gather, so the ranking may
    # scribble on it directly (copy=False) — one allocation, not two.
    return rank_top_k_entries(
        candidates, scores[candidates], node, min(k, len(scores)),
        include_self=include_self, copy=False,
    )


def rank_top_k_entries(candidates: np.ndarray, values: np.ndarray,
                       node: int, k: int,
                       include_self: bool = False,
                       copy: bool = True) -> List[Tuple[int, float]]:
    """Rank explicit ``(candidates, values)`` pairs into a top-``k`` list.

    The payload-light form of :func:`rank_top_k_within`: the caller has
    already gathered the candidates' scores, so a scatter task ships
    ``O(candidates)`` floats instead of the full score vector — this is
    what the sharded service's per-shard ranking tasks close over.  Same
    canonical order, same result: ``rank_top_k_within(scores, node, part,
    k)`` equals ``rank_top_k_entries(part, scores[part], node, min(k,
    len(scores)))`` exactly.

    ``copy=False`` lets a caller that owns ``values`` (a fresh gather, a
    task's unpickled payload) skip the defensive copy; the array may then
    be modified in place (the source is masked to ``-inf``).
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if copy:
        values = values.copy()
    if not include_self:
        values[candidates == node] = -np.inf
    return _select_top_k(candidates, values, k)


def propagate_scores(node: int, distributions: montecarlo.WalkDistributions,
                     transition_t: sparse.csr_matrix, diagonal: np.ndarray,
                     c: float, walk_steps: int) -> np.ndarray:
    """Combine walk distributions into single-source scores (stateless form).

    The reverse-Horner recurrence ``r <- P^T r + c^t (x ∘ P^t e_i)``
    evaluated from ``t = T`` down to 0 — ``T`` sparse matvecs total.  This
    free-function form exists so the engine
    (:meth:`QueryEngine.propagate_source`) and the sharded service's
    payload-free ranking workers (which rebuild ``transition_t`` and
    ``diagonal`` from resident shared-memory views) run literally the same
    arithmetic: identical inputs produce bitwise-identical score vectors
    because it *is* the same code.
    """
    n = transition_t.shape[0]
    decay_powers = c ** np.arange(walk_steps + 1)
    result = np.zeros(n, dtype=np.float64)
    for step in range(walk_steps, -1, -1):
        if step < walk_steps:
            result = transition_t @ result
        weighted = decay_powers[step] * (
            diagonal * distributions.dense(n, step)
        )
        result += weighted
    result[node] = 1.0
    # Truncation and Monte-Carlo noise can push scores slightly past 1.
    np.clip(result, 0.0, 1.0, out=result)
    return result


def merge_top_k(partials: Sequence[List[Tuple[int, float]]],
                k: int) -> List[Tuple[int, float]]:
    """Merge per-shard top-``k`` lists into the exact global top-``k``.

    ``partials`` are lists produced by :func:`rank_top_k_within` over
    *disjoint* candidate sets.  The merge is exact (not approximate)
    because every global top-``k`` entry is necessarily inside its owning
    shard's local top-``k``: fewer than ``k`` candidates beat it globally,
    so fewer than ``k`` beat it in its own shard.  Returns at most ``k``
    entries in the canonical order of :func:`rank_top_k`.
    """
    entries = [entry for part in partials for entry in part]
    if not entries:
        return []
    nodes = np.array([node for node, _score in entries], dtype=np.int64)
    values = np.array([score for _node, score in entries], dtype=np.float64)
    return _select_top_k(nodes, values, k)


class QueryEngine:
    """Answers SimRank queries against a graph + diagonal index.

    The engine caches the sparse transition matrix ``P`` (needed by MCSS for
    the reverse propagation) so repeated queries do not rebuild it.
    """

    def __init__(self, graph: DiGraph, index: DiagonalIndex,
                 params: Optional[SimRankParams] = None) -> None:
        index.validate_for(graph)
        self.graph = graph
        self.index = index
        self.params = params or index.params
        self._transition: Optional[sparse.csr_matrix] = None
        self._transition_t: Optional[sparse.csr_matrix] = None
        self._query_counter = 0

    # ------------------------------------------------------------------ #
    # Cached linear-algebra views
    # ------------------------------------------------------------------ #
    @property
    def transition(self) -> sparse.csr_matrix:
        """The in-link transition matrix ``P`` (built lazily, cached)."""
        if self._transition is None:
            self._transition = self.graph.transition_matrix()
        return self._transition

    @property
    def transition_t(self) -> sparse.csr_matrix:
        """``P^T`` in CSR form (cached separately for fast matvecs)."""
        if self._transition_t is None:
            self._transition_t = self.transition.T.tocsr()
        return self._transition_t

    def _next_rng(self, salt: int) -> np.random.Generator:
        self._query_counter += 1
        return walks.make_rng(self.params.seed, stream=salt * 1_000_003 + self._query_counter)

    # ------------------------------------------------------------------ #
    # Single-pair queries
    # ------------------------------------------------------------------ #
    def single_pair(self, node_i: int, node_j: int,
                    walkers: Optional[int] = None) -> float:
        """MCSP: Monte-Carlo estimate of ``s(i, j)``."""
        node_i = self.graph.check_node(node_i)
        node_j = self.graph.check_node(node_j)
        if node_i == node_j:
            return 1.0
        walkers = walkers if walkers is not None else self.params.query_walkers
        dist_i = montecarlo.estimate_walk_distributions(
            self.graph, node_i, self.params, rng=self._next_rng(node_i), walkers=walkers
        )
        dist_j = montecarlo.estimate_walk_distributions(
            self.graph, node_j, self.params, rng=self._next_rng(node_j), walkers=walkers
        )
        return self.combine_pair(dist_i, dist_j)

    def exact_single_pair(self, node_i: int, node_j: int) -> float:
        """Exact linearized ``s(i, j)`` (no Monte-Carlo), for validation."""
        node_i = self.graph.check_node(node_i)
        node_j = self.graph.check_node(node_j)
        if node_i == node_j:
            return 1.0
        dist_i = montecarlo.exact_walk_distributions(self.graph, node_i, self.params)
        dist_j = montecarlo.exact_walk_distributions(self.graph, node_j, self.params)
        return self.combine_pair(dist_i, dist_j)

    def combine_pair(self, dist_i: montecarlo.WalkDistributions,
                     dist_j: montecarlo.WalkDistributions) -> float:
        """Score a pair from two walk distributions (shared with the service).

        Delegates to :func:`repro.core.montecarlo.combine_pair_distributions`,
        which batches all steps over preallocated buffers; the result is
        bitwise-identical to the historical per-step ``sparse_dot`` loop.
        """
        total = montecarlo.combine_pair_distributions(
            dist_i, dist_j, self.index.diagonal,
            self.params.c, self.params.walk_steps,
        )
        return float(min(total, 1.0))

    # ------------------------------------------------------------------ #
    # Single-source queries
    # ------------------------------------------------------------------ #
    def single_source(self, node: int, walkers: Optional[int] = None) -> np.ndarray:
        """MCSS: Monte-Carlo estimate of ``s(node, ·)`` as a dense vector."""
        node = self.graph.check_node(node)
        walkers = walkers if walkers is not None else self.params.query_walkers
        distributions = montecarlo.estimate_walk_distributions(
            self.graph, node, self.params, rng=self._next_rng(node), walkers=walkers
        )
        return self.propagate_source(node, distributions)

    def exact_single_source(self, node: int) -> np.ndarray:
        """Exact linearized single-source scores, for validation."""
        node = self.graph.check_node(node)
        distributions = montecarlo.exact_walk_distributions(self.graph, node, self.params)
        return self.propagate_source(node, distributions)

    def propagate_source(self, node: int,
                         distributions: montecarlo.WalkDistributions) -> np.ndarray:
        """Combine walk distributions into single-source scores.

        Uses the reverse-Horner recurrence
        ``r <- P^T r + c^t (x ∘ P^t e_i)`` evaluated from ``t = T`` down to 0,
        which needs only ``T`` sparse matvecs.  Delegates to the stateless
        :func:`propagate_scores` so out-of-process callers (the resident
        scatter workers) share the exact arithmetic.
        """
        return propagate_scores(
            node, distributions, self.transition_t, self.index.diagonal,
            self.params.c, self.params.walk_steps,
        )

    def top_k(self, node: int, k: int = 10, walkers: Optional[int] = None,
              include_self: bool = False) -> List[Tuple[int, float]]:
        """Top-``k`` most similar nodes to ``node`` by MCSS scores."""
        scores = self.single_source(node, walkers=walkers)
        return rank_top_k(scores, node, k, include_self=include_self)

    # ------------------------------------------------------------------ #
    # All-pairs queries
    # ------------------------------------------------------------------ #
    def all_pairs(self, walkers: Optional[int] = None,
                  nodes: Optional[List[int]] = None) -> np.ndarray:
        """MCAP: full similarity matrix via repeated MCSS (dense n x n).

        ``nodes`` restricts the rows that are computed (useful for sampling
        large graphs); other rows are zero.
        """
        n = self.graph.n_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for node in (nodes if nodes is not None else range(n)):
            matrix[node] = self.single_source(node, walkers=walkers)
        return matrix

    def iter_all_pairs(self, walkers: Optional[int] = None
                       ) -> Iterator[Tuple[int, np.ndarray]]:
        """Memory-light MCAP: yield ``(node, scores)`` one source at a time."""
        for node in range(self.graph.n_nodes):
            yield node, self.single_source(node, walkers=walkers)

    # ------------------------------------------------------------------ #
    def query_cost_summary(self) -> Dict[str, float]:
        """Predicted per-query costs from the paper's complexity bounds."""
        stats_avg_degree = (
            self.graph.n_edges / self.graph.n_nodes if self.graph.n_nodes else 0.0
        )
        log_degree = float(np.log(max(stats_avg_degree, np.e)))
        walkers = self.params.query_walkers
        steps = self.params.walk_steps
        return {
            "mcsp_operations": float(steps * walkers),
            "mcss_operations": float(steps * steps * walkers * log_degree),
            "mcap_operations": float(
                self.graph.n_nodes * steps * steps * walkers * log_degree
            ),
        }
